"""Worker-side logic: a model replica bound to a data partition.

A worker owns

* a replica of the model,
* its partition of the training data (served by a mini-batch loader), and
* the version number of the global weights its replica currently holds.

One call to :meth:`Worker.compute_gradients` performs the gradient
computation of one iteration (optionally aggregating several micro-batches,
which models the paper's "each worker sums the gradients of its 4 GPUs").
The worker never updates weights itself — that is the server's job — so the
same class is used by the threaded runtime and the simulator.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.data.loader import MiniBatchLoader
from repro.nn.module import Module
from repro.utils.serialization import scale_state

__all__ = ["GradientComputation", "Worker"]


@dataclass(frozen=True)
class GradientComputation:
    """Result of one local iteration."""

    gradients: Mapping[str, np.ndarray]
    buffers: Mapping[str, np.ndarray]
    loss: float
    samples: int
    base_version: int


class Worker:
    """A parameter-server worker (one model replica plus a data partition)."""

    def __init__(
        self,
        worker_id: str,
        model: Module,
        loader: MiniBatchLoader,
        loss_fn,
        micro_batches: int = 1,
    ) -> None:
        if micro_batches <= 0:
            raise ValueError("micro_batches must be positive")
        self.worker_id = worker_id
        self.model = model
        self.loader = loader
        self.loss_fn = loss_fn
        self.micro_batches = int(micro_batches)
        self._local_version = 0
        self._iterations = 0
        self._samples_processed = 0
        self._loss_history: list[float] = []

    # ------------------------------------------------------------------
    # Weight synchronization
    # ------------------------------------------------------------------
    @property
    def local_version(self) -> int:
        """Store version of the weights currently loaded in the replica."""
        return self._local_version

    def load_weights(self, weights: Mapping[str, np.ndarray], version: int) -> None:
        """Replace the replica's trainable weights with a pulled snapshot.

        ``weights`` may be a *delta* — a subset of the parameters holding
        only the entries updated since this worker's last pull; untouched
        parameters keep their current (still correct) values.  The arrays
        may be read-only copy-on-write views; they are copied into the
        replica's own storage here.
        """
        parameters = dict(self.model.named_parameters())
        unknown = set(weights) - set(parameters)
        if unknown:
            raise KeyError(f"pulled weights contain unknown parameters: {sorted(unknown)[:5]}")
        for name, value in weights.items():
            data = parameters[name].data
            data[...] = np.asarray(value, dtype=data.dtype)
        self._local_version = int(version)

    # ------------------------------------------------------------------
    # Gradient computation
    # ------------------------------------------------------------------
    def compute_gradients(self) -> GradientComputation:
        """Run one iteration: forward/backward over ``micro_batches`` batches.

        The returned gradients are averaged over the micro-batches, matching
        the behaviour of a worker that averages the gradients produced by its
        local GPUs before pushing.
        """
        self.model.train(True)
        accumulated: "OrderedDict[str, np.ndarray]" = OrderedDict()
        total_loss = 0.0
        total_samples = 0
        for _ in range(self.micro_batches):
            inputs, labels = self.loader.next_batch()
            self.model.zero_grad()
            outputs = self.model.forward(inputs)
            loss = self.loss_fn.forward(outputs, labels)
            self.model.backward(self.loss_fn.backward())
            gradients = self.model.gradients()
            if not accumulated:
                accumulated = gradients
            else:
                for name, grad in gradients.items():
                    accumulated[name] = accumulated[name] + grad
            total_loss += loss * inputs.shape[0]
            total_samples += inputs.shape[0]

        averaged = scale_state(accumulated, 1.0 / self.micro_batches)
        self._iterations += 1
        self._samples_processed += total_samples
        mean_loss = total_loss / max(total_samples, 1)
        self._loss_history.append(mean_loss)
        return GradientComputation(
            gradients=averaged,
            buffers=self.model.buffers(),
            loss=mean_loss,
            samples=total_samples,
            base_version=self._local_version,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def iterations(self) -> int:
        """Number of iterations (pushes) this worker has computed."""
        return self._iterations

    @property
    def samples_processed(self) -> int:
        """Total training samples consumed by this worker."""
        return self._samples_processed

    @property
    def mean_loss(self) -> float:
        """Mean training loss over all iterations so far."""
        if not self._loss_history:
            return float("nan")
        return float(np.mean(self._loss_history))

    def recent_loss(self, window: int = 10) -> float:
        """Mean training loss over the last ``window`` iterations."""
        if not self._loss_history:
            return float("nan")
        return float(np.mean(self._loss_history[-window:]))
