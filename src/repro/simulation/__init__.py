"""Discrete-event cluster simulator.

The paper's timing results come from real GPU clusters (homogeneous
4 x 4xP100 nodes over Infiniband; a heterogeneous GTX 1060 + GTX 1080 Ti
box).  The offline reproduction replaces the hardware with a discrete-event
simulation of the *time* components — per-iteration compute time from a
device profile, communication time from a network model, and waiting time
from the synchronization policy — while the *math* (gradients, weight
updates, staleness effects on accuracy) is computed for real with the NumPy
substrate.  The result is an accuracy-versus-virtual-time curve directly
comparable to the paper's figures.
"""

from repro.simulation.clock import VirtualClock
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.profiles import DeviceProfile, GPU_CATALOGUE, get_device_profile
from repro.simulation.network import NetworkModel, INFINIBAND_EDR, GIGABIT_ETHERNET, LOCAL_PCIE
from repro.simulation.cluster import WorkerSpec, ClusterSpec, homogeneous_cluster, heterogeneous_cluster
from repro.simulation.workload import ModelCost, estimate_model_cost, IterationTimeModel
from repro.simulation.topology import (
    Link,
    Topology,
    TopologyState,
    TopologyTimeModel,
    TOPOLOGY_PRESETS,
    build_topology,
    ring_allreduce,
    ring_allreduce_wire_bytes,
    single_link_topology,
    rack_topology,
)
from repro.simulation.trace import TraceRecord, SimulationTrace
from repro.simulation.trainer import (
    SimulationConfig,
    SimulationResult,
    SimulatedTraining,
    simulate_training,
)

__all__ = [
    "VirtualClock",
    "Event",
    "EventKind",
    "EventQueue",
    "DeviceProfile",
    "GPU_CATALOGUE",
    "get_device_profile",
    "NetworkModel",
    "INFINIBAND_EDR",
    "GIGABIT_ETHERNET",
    "LOCAL_PCIE",
    "WorkerSpec",
    "ClusterSpec",
    "homogeneous_cluster",
    "heterogeneous_cluster",
    "ModelCost",
    "estimate_model_cost",
    "IterationTimeModel",
    "Link",
    "Topology",
    "TopologyState",
    "TopologyTimeModel",
    "TOPOLOGY_PRESETS",
    "build_topology",
    "ring_allreduce",
    "ring_allreduce_wire_bytes",
    "single_link_topology",
    "rack_topology",
    "TraceRecord",
    "SimulationTrace",
    "SimulationConfig",
    "SimulationResult",
    "SimulatedTraining",
    "simulate_training",
]
