"""Virtual clock for the discrete-event simulation."""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonically advancing virtual time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("start time must be >= 0")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` (never backwards)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move virtual time backwards: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)
        return self._now

    def advance_by(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ValueError("delta must be >= 0")
        self._now += float(delta)
        return self._now
