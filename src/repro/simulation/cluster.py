"""Cluster specifications.

A cluster is a set of workers, each with a device profile and a network
link to the (single) parameter server, plus a count of local GPUs whose
gradients the worker aggregates before pushing.  Builders are provided for
the two environments of the paper:

* :func:`homogeneous_cluster` — N identical workers (the SOSCIP setup:
  4 workers, each with 4 P100 GPUs on Infiniband);
* :func:`heterogeneous_cluster` — workers with different devices (the
  GTX 1060 + GTX 1080 Ti Docker setup on Ethernet).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.network import GIGABIT_ETHERNET, INFINIBAND_EDR, NetworkModel
from repro.simulation.profiles import DeviceProfile, get_device_profile

__all__ = ["WorkerSpec", "ClusterSpec", "homogeneous_cluster", "heterogeneous_cluster"]


@dataclass(frozen=True)
class WorkerSpec:
    """One worker machine in the simulated cluster."""

    worker_id: str
    device: DeviceProfile
    network: NetworkModel
    gpus_per_worker: int = 1

    def __post_init__(self) -> None:
        if self.gpus_per_worker <= 0:
            raise ValueError("gpus_per_worker must be positive")


@dataclass(frozen=True)
class ClusterSpec:
    """A full cluster: the worker machines (the server is implicit)."""

    workers: tuple[WorkerSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.workers:
            raise ValueError("a cluster needs at least one worker")
        ids = [worker.worker_id for worker in self.workers]
        if len(ids) != len(set(ids)):
            raise ValueError("worker ids must be unique")

    @property
    def num_workers(self) -> int:
        """Number of worker machines."""
        return len(self.workers)

    @property
    def worker_ids(self) -> list[str]:
        """Worker identifiers in declaration order."""
        return [worker.worker_id for worker in self.workers]

    def worker(self, worker_id: str) -> WorkerSpec:
        """Look up a worker spec by id."""
        for spec in self.workers:
            if spec.worker_id == worker_id:
                return spec
        raise KeyError(f"unknown worker {worker_id!r}")

    @property
    def is_heterogeneous(self) -> bool:
        """True when workers do not all share the same device profile."""
        names = {worker.device.name for worker in self.workers}
        return len(names) > 1

    def speed_ratio(self) -> float:
        """Ratio of the fastest to the slowest device's sustained throughput."""
        speeds = [worker.device.sustained_flops for worker in self.workers]
        return max(speeds) / min(speeds)


def homogeneous_cluster(
    num_workers: int = 4,
    device: str | DeviceProfile = "p100",
    network: NetworkModel = INFINIBAND_EDR,
    gpus_per_worker: int = 4,
) -> ClusterSpec:
    """The paper's homogeneous environment: identical workers on Infiniband."""
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    profile = get_device_profile(device) if isinstance(device, str) else device
    workers = tuple(
        WorkerSpec(
            worker_id=f"worker-{index}",
            device=profile,
            network=network,
            gpus_per_worker=gpus_per_worker,
        )
        for index in range(num_workers)
    )
    return ClusterSpec(workers=workers)


def heterogeneous_cluster(
    devices: list[str | DeviceProfile] | None = None,
    network: NetworkModel = GIGABIT_ETHERNET,
    gpus_per_worker: int = 1,
) -> ClusterSpec:
    """The paper's heterogeneous environment (default: GTX 1080 Ti + GTX 1060)."""
    if devices is None:
        devices = ["gtx1080ti", "gtx1060"]
    if not devices:
        raise ValueError("devices must not be empty")
    workers = []
    for index, device in enumerate(devices):
        profile = get_device_profile(device) if isinstance(device, str) else device
        workers.append(
            WorkerSpec(
                worker_id=f"worker-{index}",
                device=profile,
                network=network,
                gpus_per_worker=gpus_per_worker,
            )
        )
    return ClusterSpec(workers=tuple(workers))
