"""Event queue for the discrete-event simulation.

Events are ordered by timestamp with a monotonically increasing sequence
number as the tie-breaker, which keeps the simulation deterministic even
when several workers push at exactly the same virtual time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(Enum):
    """Types of events the training simulator schedules."""

    PUSH_ARRIVAL = "push_arrival"
    WORKER_RELEASED = "worker_released"
    EVALUATION = "evaluation"


@dataclass(frozen=True, order=False)
class Event:
    """One scheduled event."""

    time: float
    kind: EventKind
    worker_id: str | None = None
    payload: dict = field(default_factory=dict)


class EventQueue:
    """Min-heap of events keyed by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        """Schedule an event."""
        if event.time < 0:
            raise ValueError("event time must be >= 0")
        heapq.heappush(self._heap, (event.time, next(self._counter), event))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[2]

    def peek(self) -> Event:
        """Return the earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek into an empty event queue")
        return self._heap[0][2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
