"""Network models for push/pull communication time.

One iteration of a worker transfers the gradient to the server (push) and
the fresh weights back (pull); both transfers move roughly the model's
parameter payload.  The communication time is modelled as
``latency + bytes / bandwidth`` per direction.

The bandwidth/latency numbers are *effective parameter-server path* values —
the throughput the push/pull operations of a 2019 parameter-server stack
(serialization, per-key messages, TCP, server aggregation) actually achieve —
not raw wire speeds.  That is why the "Infiniband" profile is hundreds of
MB/s rather than 100 Gb/s: it is calibrated so the compute-to-communication
ratios of the paper's models land where its Section V-C discussion places
them (FC-bearing AlexNet communication-bound, pure-conv ResNets
computation-bound).

Profiles provided:

* :data:`INFINIBAND_EDR` — the paper's homogeneous SOSCIP cluster.
* :data:`GIGABIT_ETHERNET` — the paper's heterogeneous Docker setup.
* :data:`LOCAL_PCIE` — co-located server and worker (loopback).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NetworkModel", "INFINIBAND_EDR", "GIGABIT_ETHERNET", "LOCAL_PCIE"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth model of the link between a worker and the server."""

    name: str
    latency: float
    bandwidth_bytes_per_second: float
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be > 0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def transfer_time(self, nbytes: int, rng: np.random.Generator | None = None) -> float:
        """Seconds to move ``nbytes`` in one direction."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        base = self.latency + nbytes / self.bandwidth_bytes_per_second
        if rng is None or self.jitter == 0:
            return base
        factor = float(np.exp(rng.normal(0.0, self.jitter)))
        return base * factor

    def round_trip_time(self, nbytes: int, rng: np.random.Generator | None = None) -> float:
        """Push + pull time for a payload of ``nbytes`` in each direction."""
        return self.transfer_time(nbytes, rng) + self.transfer_time(nbytes, rng)

    def sharded_transfer_time(
        self, shard_nbytes, rng: np.random.Generator | None = None
    ) -> float:
        """One-direction transfer time against a sharded parameter server.

        Each shard lives on its own server node, so the per-shard transfers
        proceed in parallel and the slowest shard gates the operation: the
        result is the max of the per-shard transfer times.  Every shard
        still pays the path latency, which is why sharding a tiny,
        latency-dominated payload buys nothing while a bandwidth-dominated
        payload speeds up by roughly the (balance-weighted) shard count.
        """
        times = [self.transfer_time(int(nbytes), rng) for nbytes in shard_nbytes]
        if not times:
            raise ValueError("shard_nbytes must not be empty")
        return max(times)

    def sharded_round_trip_time(
        self, shard_nbytes, rng: np.random.Generator | None = None
    ) -> float:
        """Push + pull time when the payload is split across shards."""
        return self.sharded_transfer_time(shard_nbytes, rng) + self.sharded_transfer_time(
            shard_nbytes, rng
        )

    def to_topology(self, worker_ids):
        """The degenerate topology equivalent of this flat model.

        One private link per worker with this model's latency, bandwidth
        and lognormal jitter — bit-for-bit identical transfer times and
        RNG consumption (the parity suite's anchor).
        """
        from repro.simulation.topology import single_link_topology

        return single_link_topology(worker_ids, self)


#: Effective PS-path throughput on the paper's Infiniband EDR cluster.
INFINIBAND_EDR = NetworkModel(
    name="infiniband-edr", latency=4e-3, bandwidth_bytes_per_second=500e6
)
#: Effective PS-path throughput of the 1 GbE / Docker heterogeneous setup.
GIGABIT_ETHERNET = NetworkModel(
    name="gigabit-ethernet", latency=4e-3, bandwidth_bytes_per_second=110e6
)
#: Server and worker co-located on one machine (loopback / PCIe).
LOCAL_PCIE = NetworkModel(name="local-pcie", latency=1e-4, bandwidth_bytes_per_second=6e9)
