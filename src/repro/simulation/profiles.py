"""Device (GPU) profiles.

A profile describes how fast a worker's device executes one training
iteration, expressed as sustained throughput in FLOP/s plus a fixed
per-iteration overhead (kernel launches, framework bookkeeping, host-device
transfers).  The catalogue contains the three GPUs used in the paper with
throughput ratios taken from their published single-precision peak rates:

* NVIDIA P100        — 9.3 TFLOP/s (homogeneous SOSCIP cluster),
* NVIDIA GTX 1080 Ti — 11.3 TFLOP/s (fast heterogeneous worker),
* NVIDIA GTX 1060    — 4.4 TFLOP/s (slow heterogeneous worker).

The default ``efficiency`` (fraction of peak reached on small CIFAR-scale
convolutions in a 2019 framework) and ``per_iteration_overhead`` are chosen
so simulated per-iteration times land in the tens-of-milliseconds range the
paper's hardware exhibits.  Absolute times do not need to match the paper
(the substrate differs); what matters for the reproduction is the *ratio*
between devices, which drives how often fast workers wait for slow ones
under each paradigm, and the compute-to-communication balance relative to
the network models in :mod:`repro.simulation.network`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DeviceProfile", "GPU_CATALOGUE", "get_device_profile"]


@dataclass(frozen=True)
class DeviceProfile:
    """Compute capability of one worker's device."""

    name: str
    peak_flops: float
    efficiency: float = 0.05
    per_iteration_overhead: float = 0.005
    jitter: float = 0.15

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ValueError("peak_flops must be > 0")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if self.per_iteration_overhead < 0:
            raise ValueError("per_iteration_overhead must be >= 0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    @property
    def sustained_flops(self) -> float:
        """Throughput actually achieved on the training workload."""
        return self.peak_flops * self.efficiency

    def compute_time(
        self, flops: float, rng: np.random.Generator | None = None
    ) -> float:
        """Seconds to execute ``flops`` floating-point operations.

        With ``rng`` given, a multiplicative log-normal jitter of relative
        width :attr:`jitter` models run-to-run variation (OS noise, clock
        throttling, input-pipeline hiccups).
        """
        if flops < 0:
            raise ValueError("flops must be >= 0")
        base = self.per_iteration_overhead + flops / self.sustained_flops
        if rng is None or self.jitter == 0:
            return base
        factor = float(np.exp(rng.normal(0.0, self.jitter)))
        return base * factor

    def scaled(self, factor: float) -> "DeviceProfile":
        """A profile ``factor`` times faster (``factor`` > 1) or slower."""
        if factor <= 0:
            raise ValueError("factor must be > 0")
        return DeviceProfile(
            name=f"{self.name}-x{factor:g}",
            peak_flops=self.peak_flops * factor,
            efficiency=self.efficiency,
            per_iteration_overhead=self.per_iteration_overhead,
            jitter=self.jitter,
        )


GPU_CATALOGUE: dict[str, DeviceProfile] = {
    "p100": DeviceProfile(name="p100", peak_flops=9.3e12),
    "gtx1080ti": DeviceProfile(name="gtx1080ti", peak_flops=11.3e12),
    "gtx1060": DeviceProfile(name="gtx1060", peak_flops=4.4e12),
    # A deliberately slow straggler profile for ablations.
    "straggler": DeviceProfile(name="straggler", peak_flops=1.5e12, jitter=0.25),
}


def get_device_profile(name: str) -> DeviceProfile:
    """Look up a profile from the catalogue by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in GPU_CATALOGUE:
        raise KeyError(f"unknown device {name!r}; known devices: {sorted(GPU_CATALOGUE)}")
    return GPU_CATALOGUE[key]
