"""Topology-aware network cost model and the ring-allreduce pattern.

The flat :class:`repro.simulation.network.NetworkModel` treats every
worker↔server path as one private latency+bandwidth link, which cannot
produce the two effects real clusters hit DSSP with: *rack bottlenecks*
(many workers funneling through one shared uplink, so transfers queue
behind each other) and *heavy-tailed jitter* (the occasional transfer that
takes 10x the median, which is exactly the straggler regime the paper's
dynamic staleness bound targets).  This module generalizes the cost model
to a link graph:

* a :class:`Link` is one ``latency + bytes/bandwidth`` hop with a pluggable
  jitter distribution (``none``, the flat model's ``lognormal``, and the
  heavy-tailed ``exponential`` / ``pareto``);
* shared links (``shared=True``) serve transfers FIFO — a transfer arriving
  while the link is busy waits for the queue to drain, and every wait is
  recorded in the state's queue trace;
* a :class:`Topology` maps each worker to its uplink path (worker → server)
  and derives worker→worker routes by tree routing (drop the common spine,
  descend the destination's path);
* :class:`TopologyTimeModel` replaces
  :class:`repro.simulation.workload.IterationTimeModel`'s communication leg
  with path traversals, and can cost a synchronous ``ring_allreduce``
  collective (``2*(n-1)`` chunked steps) instead of the PS push/pull pair.

The flat model is a *degenerate case*: :func:`single_link_topology` (one
private lognormal-jittered link per worker) reproduces the flat model's
virtual times bit-for-bit — same arithmetic, same RNG draw order — which
is enforced by the parity suite in ``tests/simulation/test_topology_parity.py``
and the CI gate.  All times inside the topology are *unscaled* network
seconds; :class:`TopologyTimeModel` applies ``time_scale`` exactly where
the flat model does so the scaled sums stay bit-for-bit comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Link",
    "Topology",
    "TopologyState",
    "TopologyTimeModel",
    "parse_jitter_spec",
    "make_jitter",
    "available_jitters",
    "single_link_topology",
    "rack_topology",
    "TOPOLOGY_PRESETS",
    "available_topology_presets",
    "canonical_topology_spec",
    "validate_topology_spec",
    "build_topology",
    "COMM_PATTERNS",
    "validate_comm_pattern",
    "ring_allreduce",
    "ring_allreduce_wire_bytes",
]


# ----------------------------------------------------------------------
# Jitter distributions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LogNormalJitter:
    """The flat model's multiplicative jitter: ``exp(N(0, sigma))``."""

    sigma: float

    def draw(self, rng: np.random.Generator) -> float:
        # Identical call signature to NetworkModel.transfer_time so the
        # degenerate single-link topology consumes the same draws.
        return float(np.exp(rng.normal(0.0, self.sigma)))


@dataclass(frozen=True)
class ExponentialTailJitter:
    """``1 + Exp(scale)``: occasional transfers several times the base."""

    scale: float

    def draw(self, rng: np.random.Generator) -> float:
        return 1.0 + float(rng.exponential(self.scale))


@dataclass(frozen=True)
class ParetoTailJitter:
    """``1 + Pareto(alpha)``: genuinely heavy tail (small alpha = heavier)."""

    alpha: float

    def draw(self, rng: np.random.Generator) -> float:
        return 1.0 + float(rng.pareto(self.alpha))


#: name -> (class, positional parameter, validator)
_JITTERS: dict[str, tuple[type | None, str | None]] = {
    "none": (None, None),
    "lognormal": (LogNormalJitter, "sigma"),
    "exponential": (ExponentialTailJitter, "scale"),
    "pareto": (ParetoTailJitter, "alpha"),
}


def available_jitters() -> tuple[str, ...]:
    """Registered jitter distribution names, sorted."""
    return tuple(sorted(_JITTERS))


def parse_jitter_spec(spec: str) -> tuple[str, float | None]:
    """Parse ``"none"``, ``"lognormal:0.2"``, ``"exponential:0.5"``, ...

    Unknown names and malformed parameters raise ``ValueError`` naming the
    accepted distributions (the same contract as the codec registry).
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(
            "jitter spec must be a non-empty string; available jitters: "
            f"{', '.join(available_jitters())}"
        )
    name, sep, rest = spec.partition(":")
    name = name.strip()
    if name not in _JITTERS:
        raise ValueError(
            f"unknown jitter {name!r}; available jitters: "
            f"{', '.join(available_jitters())}"
        )
    if not sep:
        if name == "none":
            return name, None
        raise ValueError(f"jitter {name!r} needs a parameter, e.g. {name!r}:0.2")
    if name == "none":
        raise ValueError("jitter 'none' takes no parameter")
    try:
        value = float(rest.strip())
    except ValueError:
        raise ValueError(
            f"jitter parameter {rest.strip()!r} in {spec!r} is not a number"
        ) from None
    if value < 0:
        raise ValueError(f"jitter parameter must be >= 0, got {value}")
    return name, value


def make_jitter(spec: str):
    """Build a jitter model from a spec string; ``None`` when jitter-free.

    A zero parameter collapses to ``None`` — the degenerate topology must
    skip the RNG draw entirely when the flat model would, or the two paths
    desynchronize their jitter streams.
    """
    name, value = parse_jitter_spec(spec)
    if name == "none" or value == 0.0:
        return None
    cls, _ = _JITTERS[name]
    return cls(value)


# ----------------------------------------------------------------------
# Links and the topology graph
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Link:
    """One hop of the network graph.

    ``shared=True`` marks a contended resource (a rack uplink, a WAN
    trunk): transfers serialize FIFO on it, and the queueing delay is what
    turns tail jitter into straggler cascades.  Private links (a worker's
    own NIC) never queue.
    """

    name: str
    latency: float
    bandwidth_bytes_per_second: float
    jitter: str = "none"
    shared: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("link name must be non-empty")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be > 0")
        # Builds (and therefore validates) the jitter model once; the frozen
        # dataclass caches it for the hot traversal loop.
        object.__setattr__(self, "jitter_model", make_jitter(self.jitter))

    def base_time(self, nbytes: float) -> float:
        """Jitter-free seconds to move ``nbytes`` across this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.latency + nbytes / self.bandwidth_bytes_per_second


class Topology:
    """A rack/link graph mapping every worker to its path to the server."""

    def __init__(
        self,
        name: str,
        links: Iterable[Link],
        paths: dict[str, Sequence[str]],
    ) -> None:
        self.name = name
        self.links: dict[str, Link] = {}
        for link in links:
            if link.name in self.links:
                raise ValueError(f"duplicate link name {link.name!r}")
            self.links[link.name] = link
        if not paths:
            raise ValueError("a topology needs at least one worker path")
        self._paths: dict[str, tuple[Link, ...]] = {}
        for worker_id, link_names in paths.items():
            if not link_names:
                raise ValueError(f"worker {worker_id!r} has an empty path")
            unknown = [name for name in link_names if name not in self.links]
            if unknown:
                raise ValueError(
                    f"worker {worker_id!r} path references unknown link(s) {unknown}"
                )
            self._paths[worker_id] = tuple(self.links[name] for name in link_names)

    @property
    def worker_ids(self) -> list[str]:
        """Worker identifiers in declaration order."""
        return list(self._paths)

    @property
    def num_workers(self) -> int:
        return len(self._paths)

    def worker_path(self, worker_id: str) -> tuple[Link, ...]:
        """Links from ``worker_id`` up to the server, in traversal order."""
        try:
            return self._paths[worker_id]
        except KeyError:
            raise KeyError(
                f"topology {self.name!r} has no worker {worker_id!r}"
            ) from None

    def worker_to_worker_path(self, src: str, dst: str) -> tuple[Link, ...]:
        """Tree route between two workers.

        Both uplink paths end at the server (the tree root); the route
        climbs ``src``'s path, skips the spine the two paths share, and
        descends ``dst``'s path.  In a two-rack topology same-rack
        neighbours use ``(leaf_src, leaf_dst)``; cross-rack routes
        additionally traverse both rack uplinks.
        """
        if src == dst:
            raise ValueError("src and dst must differ")
        up = self.worker_path(src)
        down = self.worker_path(dst)
        common = 0
        while (
            common < len(up)
            and common < len(down)
            and up[len(up) - 1 - common] is down[len(down) - 1 - common]
        ):
            common += 1
        return up[: len(up) - common] + tuple(reversed(down[: len(down) - common]))

    def new_state(self) -> "TopologyState":
        """Fresh mutable queue state for one simulation run."""
        return TopologyState(self)

    def describe(self) -> dict:
        """Plain-data summary (provenance, debugging, sweeps)."""
        return {
            "name": self.name,
            "links": [
                {
                    "name": link.name,
                    "latency": link.latency,
                    "bandwidth": link.bandwidth_bytes_per_second,
                    "jitter": link.jitter,
                    "shared": link.shared,
                }
                for link in self.links.values()
            ],
            "paths": {
                worker_id: [link.name for link in path]
                for worker_id, path in self._paths.items()
            },
        }


class TopologyState:
    """Mutable per-run state: FIFO occupancy of the shared links.

    All times are unscaled network seconds.  ``queue_trace`` records one
    entry per shared-link traversal (arrival, start-of-service, wait,
    bytes, tag) — the determinism suite pins it, and sweeps read rack
    contention out of it.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._busy_until: dict[str, float] = {}
        self.queue_trace: list[dict] = []

    def transfer(
        self,
        path: Sequence[Link],
        nbytes: float,
        start: float = 0.0,
        rng: np.random.Generator | None = None,
        tag: str | None = None,
    ) -> float:
        """Duration of moving ``nbytes`` along ``path`` starting at ``start``.

        Store-and-forward: each link is traversed in order, shared links
        serve FIFO (a busy link delays the transfer until it drains).  The
        return value is the *duration* (not the completion time), computed
        by pure accumulation so a single private link is bit-for-bit
        ``(latency + nbytes/bandwidth) * jitter`` — the flat model's
        arithmetic.  A zero-byte transfer still pays every link's latency.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if not path:
            raise ValueError("path must contain at least one link")
        elapsed = 0.0
        for link in path:
            service = link.latency + nbytes / link.bandwidth_bytes_per_second
            if rng is not None and link.jitter_model is not None:
                service *= link.jitter_model.draw(rng)
            if link.shared:
                arrival = start + elapsed
                begin = self._busy_until.get(link.name, 0.0)
                if begin < arrival:
                    begin = arrival
                wait = begin - arrival
                self._busy_until[link.name] = begin + service
                self.queue_trace.append(
                    {
                        "link": link.name,
                        "arrival": arrival,
                        "start": begin,
                        "wait": wait,
                        "nbytes": float(nbytes),
                        "tag": tag,
                    }
                )
                elapsed += wait + service
            else:
                elapsed += service
        return elapsed

    def busy_until(self, link_name: str) -> float:
        """When a shared link's current queue drains (0.0 when idle)."""
        return self._busy_until.get(link_name, 0.0)


# ----------------------------------------------------------------------
# Builders and plain-data topology specs
# ----------------------------------------------------------------------
def single_link_topology(worker_ids: Sequence[str], network, name: str = "flat") -> Topology:
    """The degenerate topology: one private link per worker.

    Built from a :class:`~repro.simulation.network.NetworkModel`, this
    reproduces the flat cost model bit-for-bit (same latency/bandwidth
    arithmetic, one lognormal draw per transfer in the same order).
    """
    jitter = "none" if network.jitter == 0 else f"lognormal:{network.jitter!r}"
    links = [
        Link(
            name=f"link-{worker_id}",
            latency=network.latency,
            bandwidth_bytes_per_second=network.bandwidth_bytes_per_second,
            jitter=jitter,
        )
        for worker_id in worker_ids
    ]
    paths = {worker_id: (f"link-{worker_id}",) for worker_id in worker_ids}
    return Topology(name=name, links=links, paths=paths)


def rack_topology(
    worker_ids: Sequence[str],
    num_racks: int,
    leaf: dict,
    uplink: dict,
    name: str = "racks",
) -> Topology:
    """Racks of workers behind shared uplinks to the server spine.

    Each worker gets a private leaf link (``leaf``: latency/bandwidth/
    jitter); each rack one uplink (``uplink``; shared FIFO unless the dict
    says otherwise).  Workers are assigned to racks in contiguous blocks.
    """
    if num_racks <= 0:
        raise ValueError("num_racks must be positive")
    if not worker_ids:
        raise ValueError("worker_ids must not be empty")
    num_racks = min(int(num_racks), len(worker_ids))
    links: list[Link] = []
    paths: dict[str, tuple[str, ...]] = {}
    for rack in range(num_racks):
        links.append(
            Link(
                name=f"uplink-rack{rack}",
                latency=float(uplink["latency"]),
                bandwidth_bytes_per_second=float(uplink["bandwidth"]),
                jitter=str(uplink.get("jitter", "none")),
                shared=bool(uplink.get("shared", True)),
            )
        )
    for index, worker_id in enumerate(worker_ids):
        rack = index * num_racks // len(worker_ids)
        leaf_name = f"leaf-{worker_id}"
        links.append(
            Link(
                name=leaf_name,
                latency=float(leaf["latency"]),
                bandwidth_bytes_per_second=float(leaf["bandwidth"]),
                jitter=str(leaf.get("jitter", "none")),
                shared=bool(leaf.get("shared", False)),
            )
        )
        paths[worker_id] = (leaf_name, f"uplink-rack{rack}")
    return Topology(name=name, links=links, paths=paths)


#: Named topology presets a spec may refer to.  ``flat`` is the degenerate
#: single-link case built from the cluster's network profile; the rack
#: presets use fixed, documented numbers (a fast intra-rack leaf, a
#: contended inter-rack uplink) so sweeps are self-contained.  The
#: ``tail-heavy`` preset swaps the lognormal jitter for exponential tails —
#: the regime where bounded-staleness paradigms should shine or break.
TOPOLOGY_PRESETS: dict[str, dict] = {
    "flat": {"kind": "flat"},
    "two-rack": {
        "kind": "racks",
        "num_racks": 2,
        "leaf": {"latency": 2e-4, "bandwidth": 2.5e9, "jitter": "lognormal:0.1"},
        "uplink": {
            "latency": 2e-3,
            "bandwidth": 6e8,
            "jitter": "lognormal:0.2",
            "shared": True,
        },
    },
    "tail-heavy": {
        "kind": "racks",
        "num_racks": 2,
        "leaf": {"latency": 2e-4, "bandwidth": 2.5e9, "jitter": "exponential:0.25"},
        "uplink": {
            "latency": 2e-3,
            "bandwidth": 6e8,
            "jitter": "exponential:1.0",
            "shared": True,
        },
    },
}

_TOPOLOGY_KEYS = {"kind", "num_racks", "leaf", "uplink", "name"}
_LINK_SPEC_KEYS = {"latency", "bandwidth", "jitter", "shared"}


def available_topology_presets() -> tuple[str, ...]:
    """Named topology presets, sorted."""
    return tuple(sorted(TOPOLOGY_PRESETS))


def _validate_link_spec(data: dict, context: str) -> None:
    if not isinstance(data, dict):
        raise ValueError(f"topology {context} must be a dict, got {type(data).__name__}")
    unknown = sorted(set(data) - _LINK_SPEC_KEYS)
    if unknown:
        raise ValueError(
            f"unknown topology {context} key(s) {unknown}; allowed: "
            f"{sorted(_LINK_SPEC_KEYS)}"
        )
    for key in ("latency", "bandwidth"):
        if key not in data:
            raise ValueError(f"topology {context} needs a {key!r} entry")
        value = float(data[key])
        if key == "latency" and value < 0:
            raise ValueError(f"topology {context} latency must be >= 0")
        if key == "bandwidth" and value <= 0:
            raise ValueError(f"topology {context} bandwidth must be > 0")
    parse_jitter_spec(str(data.get("jitter", "none")))


def canonical_topology_spec(spec: str | dict) -> dict:
    """Resolve a preset name or inline dict to the canonical dict form.

    Raises ``ValueError`` on unknown presets, unknown keys, unknown kinds
    and malformed link entries — this is the construction-time validation
    behind ``ClusterConfig.topology``.
    """
    if isinstance(spec, str):
        key = spec.strip().lower()
        if key not in TOPOLOGY_PRESETS:
            raise ValueError(
                f"unknown topology preset {spec!r}; known presets: "
                f"{', '.join(available_topology_presets())}"
            )
        return dict(TOPOLOGY_PRESETS[key], name=key)
    if not isinstance(spec, dict):
        raise ValueError(
            "topology must be a preset name or a dict, got "
            f"{type(spec).__name__}"
        )
    unknown = sorted(set(spec) - _TOPOLOGY_KEYS)
    if unknown:
        raise ValueError(
            f"unknown topology key(s) {unknown}; allowed: {sorted(_TOPOLOGY_KEYS)}"
        )
    kind = spec.get("kind")
    if kind == "flat":
        extra = sorted(set(spec) - {"kind", "name"})
        if extra:
            raise ValueError(f"flat topology takes no {extra} entries")
        return {"kind": "flat", "name": str(spec.get("name", "flat"))}
    if kind == "racks":
        if int(spec.get("num_racks", 0)) <= 0:
            raise ValueError("racks topology needs a positive 'num_racks'")
        for part in ("leaf", "uplink"):
            if part not in spec:
                raise ValueError(f"racks topology needs a {part!r} link spec")
            _validate_link_spec(spec[part], part)
        return {
            "kind": "racks",
            "num_racks": int(spec["num_racks"]),
            "leaf": dict(spec["leaf"]),
            "uplink": dict(spec["uplink"]),
            "name": str(spec.get("name", "racks")),
        }
    raise ValueError(
        f"unknown topology kind {kind!r}; known kinds: 'flat', 'racks'"
    )


def validate_topology_spec(spec: str | dict) -> None:
    """Raise ``ValueError`` unless ``spec`` describes a buildable topology."""
    canonical_topology_spec(spec)


def build_topology(spec: str | dict | Topology, worker_ids: Sequence[str], network) -> Topology:
    """Materialize a topology for ``worker_ids``.

    ``spec`` may be a preset name, a canonical dict, or an already-built
    :class:`Topology` (validated against the worker ids and returned
    as-is).  ``network`` is the cluster's flat
    :class:`~repro.simulation.network.NetworkModel`, used by the
    degenerate ``flat`` kind.
    """
    if isinstance(spec, Topology):
        missing = [wid for wid in worker_ids if wid not in spec._paths]
        if missing:
            raise ValueError(
                f"topology {spec.name!r} has no path for worker(s) {missing}"
            )
        return spec
    data = canonical_topology_spec(spec)
    if data["kind"] == "flat":
        return single_link_topology(worker_ids, network, name=data.get("name", "flat"))
    return rack_topology(
        worker_ids,
        num_racks=data["num_racks"],
        leaf=data["leaf"],
        uplink=data["uplink"],
        name=data.get("name", "racks"),
    )


# ----------------------------------------------------------------------
# Communication patterns
# ----------------------------------------------------------------------
#: Communication patterns the simulated backend can cost.
COMM_PATTERNS: tuple[str, ...] = ("ps", "ring_allreduce")


def validate_comm_pattern(name: str) -> str:
    """Normalize and validate a communication pattern name."""
    key = str(name).strip().lower()
    if key not in COMM_PATTERNS:
        raise ValueError(
            f"unknown comm_pattern {name!r}; known patterns: "
            f"{', '.join(COMM_PATTERNS)}"
        )
    return key


def ring_allreduce_wire_bytes(payload_nbytes: float, num_workers: int) -> float:
    """Bytes each worker puts on the wire for one ring allreduce.

    ``2*(n-1)`` steps of ``payload/n`` bytes each: ``2*(n-1)/n * payload``
    per worker — bandwidth-optimal, independent of worker count in the
    limit, and the quantity the property suite pins.
    """
    if num_workers < 2:
        raise ValueError("ring allreduce needs at least 2 workers")
    if payload_nbytes < 0:
        raise ValueError("payload_nbytes must be >= 0")
    return 2.0 * (num_workers - 1) / num_workers * payload_nbytes


def ring_allreduce(arrays: Sequence[np.ndarray], average: bool = True) -> np.ndarray:
    """Numerically execute a chunked ring allreduce over ``arrays``.

    Reduce-scatter (``n-1`` steps, each hop *adding* the incoming partial
    chunk) followed by allgather.  Each chunk's sum is accumulated
    sequentially around the ring, so on identical inputs the result is
    bit-for-bit equal to the server's sequential sum-then-divide — the
    property the simulated ``ring_allreduce`` pattern relies on to keep
    the PS apply path as its numerical substrate.
    """
    if not arrays:
        raise ValueError("arrays must not be empty")
    n = len(arrays)
    first = np.asarray(arrays[0])
    for array in arrays[1:]:
        if np.asarray(array).shape != first.shape:
            raise ValueError("all arrays must share one shape")
    if n == 1:
        result = np.array(first, dtype=np.float64)
        return result
    partials = [np.array(array, dtype=np.float64).ravel() for array in arrays]
    # Chunk c covers bounds[c]:bounds[c+1]; np.array_split's balanced sizes.
    size = partials[0].size
    base, extra = divmod(size, n)
    bounds = [0]
    for c in range(n):
        bounds.append(bounds[-1] + base + (1 if c < extra else 0))

    def chunk(owner: int, c: int) -> np.ndarray:
        return partials[owner][bounds[c] : bounds[c + 1]]

    # Reduce-scatter: in step s worker i sends chunk (i - s) mod n to
    # worker i+1, which accumulates it.  After n-1 steps worker
    # (c + n - 1) mod n holds the full sum of chunk c.
    for step in range(n - 1):
        for i in range(n):
            c = (i - step) % n
            dst = (i + 1) % n
            incoming = chunk(i, c)
            chunk(dst, c)[:] = incoming + chunk(dst, c)
    out = np.empty(size, dtype=np.float64)
    for c in range(n):
        owner = (c + n - 1) % n
        out[bounds[c] : bounds[c + 1]] = chunk(owner, c)
    if average:
        out /= n
    return out.reshape(first.shape)


# ----------------------------------------------------------------------
# The topology-aware iteration time model
# ----------------------------------------------------------------------
class TopologyTimeModel:
    """Per-iteration times on a topology (PS push/pull or ring allreduce).

    Drop-in replacement for the communication leg of
    :class:`repro.simulation.workload.IterationTimeModel`: compute time
    still comes from the worker's device profile, but transfers traverse
    the link graph (paying FIFO queueing on shared links) instead of one
    flat link.  The model is stateful — it owns the run's
    :class:`TopologyState` — and must therefore be built fresh per run.

    ``time_scale`` is applied exactly as in the flat model
    (``scale*compute + scale*(push+pull)``), so a degenerate topology is
    bit-for-bit identical to the flat path; the queue timeline itself is
    kept in unscaled network seconds (callers pass scaled virtual ``now``,
    which is divided back — exact for the default ``time_scale=1.0``).

    For ``comm_pattern="ring_allreduce"`` the collective's cost is
    computed once per synchronous round — ``2*(n-1)`` steps, each gated by
    the slowest worker→neighbour chunk transfer, chunks queueing FIFO on
    shared uplinks — and shared by every worker of that round (the round
    is keyed by the worker's iteration count; BSP keeps those aligned).
    """

    def __init__(
        self,
        cost,
        batch_size: int,
        topology: Topology,
        *,
        time_scale: float = 1.0,
        push_wire_fraction: float = 1.0,
        comm_pattern: str = "ps",
        worker_ids: Sequence[str] | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if not 0.0 < push_wire_fraction <= 1.0:
            raise ValueError(
                f"push_wire_fraction must be in (0, 1], got {push_wire_fraction}"
            )
        self.cost = cost
        self.batch_size = int(batch_size)
        self.topology = topology
        self.time_scale = float(time_scale)
        self.push_wire_fraction = float(push_wire_fraction)
        self.comm_pattern = validate_comm_pattern(comm_pattern)
        self.worker_ids = list(worker_ids or topology.worker_ids)
        if self.comm_pattern == "ring_allreduce" and len(self.worker_ids) < 2:
            raise ValueError("ring allreduce needs at least 2 workers")
        self.state = topology.new_state()
        self._ring_round_times: dict[int, float] = {}

    # -- compute leg: identical arithmetic to IterationTimeModel ---------
    def _raw_compute(self, spec, rng: np.random.Generator | None) -> float:
        flops = self.cost.iteration_flops(self.batch_size) / spec.gpus_per_worker
        return spec.device.compute_time(flops, rng=rng)

    def compute_time(self, spec, rng: np.random.Generator | None = None) -> float:
        """Gradient-computation time of one iteration on ``spec``'s device."""
        return self.time_scale * self._raw_compute(spec, rng)

    # -- communication legs ---------------------------------------------
    def _ps_comm(self, worker_id: str, start: float, rng) -> float:
        path = self.topology.worker_path(worker_id)
        push = self.state.transfer(
            path,
            self.cost.parameter_bytes * self.push_wire_fraction,
            start=start,
            rng=rng,
            tag=f"{worker_id}:push",
        )
        pull = self.state.transfer(
            path,
            self.cost.parameter_bytes,
            start=start + push,
            rng=rng,
            tag=f"{worker_id}:pull",
        )
        return push + pull

    def _ring_round_time(self, round_index: int, start: float, rng) -> float:
        cached = self._ring_round_times.get(round_index)
        if cached is not None:
            return cached
        n = len(self.worker_ids)
        chunk_bytes = self.cost.parameter_bytes / n
        elapsed = 0.0
        for step in range(2 * (n - 1)):
            step_time = 0.0
            for index, worker_id in enumerate(self.worker_ids):
                neighbour = self.worker_ids[(index + 1) % n]
                duration = self.state.transfer(
                    self.topology.worker_to_worker_path(worker_id, neighbour),
                    chunk_bytes,
                    start=start + elapsed,
                    rng=rng,
                    tag=f"{worker_id}:ring{round_index}.{step}",
                )
                if duration > step_time:
                    step_time = duration
            elapsed += step_time
        self._ring_round_times[round_index] = elapsed
        # The cache only needs the active round (BSP keeps rounds aligned);
        # keep a couple behind it so a just-released straggler still hits.
        for key in [k for k in self._ring_round_times if k < round_index - 2]:
            del self._ring_round_times[key]
        return elapsed

    def communication_time(
        self,
        spec,
        rng: np.random.Generator | None = None,
        now: float = 0.0,
        round_index: int = 0,
    ) -> float:
        """Scaled communication time of one iteration starting at ``now``."""
        start = now / self.time_scale + self._raw_compute(spec, None)
        if self.comm_pattern == "ring_allreduce":
            return self.time_scale * self._ring_round_time(round_index, start, rng)
        return self.time_scale * self._ps_comm(spec.worker_id, start, rng)

    def iteration_time(
        self,
        spec,
        rng: np.random.Generator | None = None,
        now: float = 0.0,
        round_index: int = 0,
    ) -> float:
        """Total busy time of one iteration (compute plus communication).

        ``now`` is the scaled virtual time the iteration starts (the
        transfer joins the shared-link queues at ``now + compute``);
        ``round_index`` keys the ring collective's once-per-round cost.
        """
        raw_compute = self._raw_compute(spec, rng)
        start = now / self.time_scale + raw_compute
        if self.comm_pattern == "ring_allreduce":
            comm = self._ring_round_time(round_index, start, rng)
        else:
            comm = self._ps_comm(spec.worker_id, start, rng)
        return self.time_scale * raw_compute + self.time_scale * comm

    # -- accounting ------------------------------------------------------
    def ring_wire_bytes_per_iteration(self) -> float:
        """Model-costed bytes each worker wires per ring round."""
        return ring_allreduce_wire_bytes(
            self.cost.parameter_bytes, len(self.worker_ids)
        )
