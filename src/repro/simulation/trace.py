"""Execution traces of simulated training runs.

Every push, release, block and evaluation is recorded with its virtual
timestamp so that experiments can reconstruct per-worker timelines — the
kind of picture Figure 1 and Figure 2 of the paper draw — and compute
waiting-time statistics per paradigm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TraceRecord", "SimulationTrace"]


@dataclass(frozen=True)
class TraceRecord:
    """One event in the simulated timeline."""

    time: float
    kind: str
    worker_id: str | None = None
    details: dict = field(default_factory=dict)


class SimulationTrace:
    """Append-only list of trace records with analysis helpers."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def record(self, time: float, kind: str, worker_id: str | None = None, **details) -> None:
        """Append a record (time must be non-negative)."""
        if time < 0:
            raise ValueError("trace time must be >= 0")
        self._records.append(
            TraceRecord(time=float(time), kind=kind, worker_id=worker_id, details=details)
        )

    @property
    def records(self) -> list[TraceRecord]:
        """All records in insertion order."""
        return list(self._records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """Records matching ``kind``."""
        return [record for record in self._records if record.kind == kind]

    def for_worker(self, worker_id: str) -> list[TraceRecord]:
        """Records attributed to one worker."""
        return [record for record in self._records if record.worker_id == worker_id]

    def push_times(self, worker_id: str) -> np.ndarray:
        """Virtual times of a worker's pushes."""
        return np.array(
            [record.time for record in self._records
             if record.kind == "push" and record.worker_id == worker_id],
            dtype=np.float64,
        )

    def iteration_intervals(self, worker_id: str) -> np.ndarray:
        """Differences between consecutive push times of a worker."""
        times = self.push_times(worker_id)
        if times.size < 2:
            return np.zeros(0, dtype=np.float64)
        return np.diff(times)

    def total_wait_time(self, worker_id: str | None = None) -> float:
        """Sum of recorded waiting durations (optionally for one worker)."""
        total = 0.0
        for record in self._records:
            if record.kind != "release":
                continue
            if worker_id is not None and record.worker_id != worker_id:
                continue
            total += float(record.details.get("wait_time", 0.0))
        return total

    def __len__(self) -> int:
        return len(self._records)
