"""Simulated distributed training: virtual time, real gradients.

The simulator drives the same :class:`repro.ps.server.ParameterServer` and
:class:`repro.ps.worker.Worker` objects as the threaded runtime, but instead
of real threads and wall-clock time it advances a virtual clock with a
discrete-event loop:

1. every worker starts by pulling the initial weights and schedules its
   first *push arrival* after one simulated iteration time (compute time on
   its device plus push/pull communication time on its link);
2. the earliest push arrival is processed: the worker's gradient is computed
   *for real* from its (possibly stale) local weights, applied at the server,
   and the synchronization policy decides whether the worker continues
   immediately or waits;
3. released workers pull the fresh weights and schedule their next push;
   blocked workers are released (and their waiting time recorded) when a
   later push satisfies their policy condition;
4. the global model is periodically evaluated on the test set, producing the
   accuracy-versus-virtual-time curves that correspond to the paper's
   figures.

Because gradients are real, stale updates genuinely perturb convergence —
ASP pays an accuracy cost, BSP pays a time cost, and SSP/DSSP trade between
them exactly as in the paper; because time is simulated, heterogeneous GPU
clusters (Figure 4, Table I) can be reproduced deterministically on a
laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.dssp import DynamicStaleSynchronousParallel
from repro.core.factory import make_policy, paradigm_label, validate_paradigm
from repro.data.dataset import ArrayDataset
from repro.data.loader import MiniBatchLoader
from repro.data.partitioner import partition_dataset
from repro.metrics.accuracy import evaluate_model
from repro.metrics.convergence import time_to_accuracy
from repro.metrics.throughput import (
    EMPTY_PERCENTILES,
    PercentileSummary,
    ThroughputSummary,
    iteration_throughput,
    percentile_summary,
)
from repro.metrics.tracker import ExperimentTracker
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.module import Module
from repro.optim.schedules import ConstantSchedule, MultiStepSchedule
from repro.optim.sgd import SGD
from repro.ps.aggregation import make_aggregator, validate_aggregation_spec
from repro.ps.compression import make_codec, validate_codec_spec
from repro.ps.faults import FaultInjector, parse_fault_specs
from repro.ps.messages import PullRequest, PushRequest
from repro.ps.server import ParameterServer
from repro.ps.sharding import make_store
from repro.ps.worker import Worker
from repro.simulation.cluster import ClusterSpec
from repro.simulation.clock import VirtualClock
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.topology import (
    Topology,
    TopologyTimeModel,
    build_topology,
    validate_comm_pattern,
    validate_topology_spec,
)
from repro.simulation.trace import SimulationTrace
from repro.simulation.workload import IterationTimeModel, estimate_model_cost
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream

__all__ = ["SimulationConfig", "SimulationResult", "SimulatedTraining", "simulate_training"]

_LOGGER = get_logger("simulation.trainer")


@dataclass
class SimulationConfig:
    """Configuration of one simulated training run.

    Attributes
    ----------
    cluster:
        The simulated machines (device profiles, network links, GPUs per
        worker).
    paradigm, paradigm_kwargs:
        Synchronization paradigm name and its parameters.
    epochs:
        Epoch budget (the paper trains for 300 epochs; the offline defaults
        are smaller).  How the budget is accounted is controlled by
        ``epoch_accounting``.
    epoch_accounting:
        ``"global"`` (default): training stops once the server has applied
        ``epochs * len(train) / batch_size`` updates in total, regardless of
        which workers produced them — on a heterogeneous cluster fast
        workers therefore contribute more updates and asynchronous-like
        paradigms finish earlier, as in the paper's Figure 4.
        ``"per_worker"``: every worker performs exactly its own share of
        iterations (strict data-parallel epochs); total training time is then
        gated by the slowest worker for every paradigm.
    batch_size:
        Mini-batch size per worker iteration.
    learning_rate, momentum, weight_decay:
        Server-side SGD hyper-parameters.
    lr_milestones, lr_decay:
        Epoch milestones at which the learning rate is multiplied by
        ``lr_decay`` (the paper uses milestones (200, 250) with decay 0.1).
    evaluate_every_updates:
        Evaluate the global model every N server updates; <= 0 evaluates
        only at the start and end.
    max_updates:
        Optional hard cap on the number of server updates (safety valve for
        benchmarks).
    time_scale:
        Uniform stretch applied to all simulated durations.
    timing_jitter:
        Whether per-iteration times receive random jitter (kept on for
        realism; turn off for exactly reproducible timing analyses).
    timing_cost:
        Optional :class:`repro.simulation.workload.ModelCost` used for the
        *time* components only.  The experiment harness passes the cost of
        the paper-scale architecture here while training a scaled-down model,
        so the compute-to-communication ratio (which drives the paradigms'
        relative behaviour) matches the paper's hardware even though the
        arithmetic runs on a smaller network.  When ``None`` the cost is
        estimated from the trained model itself.
    timing_batch_size:
        Mini-batch size used for the *time* components only (the paper uses
        128); defaults to ``batch_size`` when ``None``.
    slowdown_schedule:
        Optional callable ``(worker_id, virtual_time) -> multiplier`` applied
        to that worker's next iteration time.  Models unstable environments
        (fluctuating network, transient stragglers) — the scenario the paper
        lists as future work; see
        :func:`repro.experiments.ablations.fluctuating_environment_ablation`.
    num_server_shards:
        Number of parameter-server shards.  1 (the default) keeps the
        monolithic store; more splits the model across a
        :class:`repro.ps.sharding.ShardedKeyValueStore` — workers then pull
        copy-on-write deltas, and the simulated push/pull time is gated by
        the most-loaded shard instead of the full payload (parallel
        per-shard transfers).
    shard_strategy:
        Key partitioning strategy for the sharded store (``"size"`` or
        ``"hash"``).
    dtype:
        Element dtype of the server-held weights (``"float64"`` or
        ``"float32"``).
    use_workspace:
        Run worker replicas and the evaluation model on the allocation-free
        workspace compute kernels (default on; see :mod:`repro.nn.workspace`).
    compression:
        Optional push codec spec (e.g. ``"topk:0.01"``; see
        :mod:`repro.ps.compression`).  Workers encode their real gradients
        (so sparsification genuinely perturbs convergence, as in Figure 3)
        and the virtual clock charges the *push* leg of every iteration for
        the codec's wire fraction of the dense payload instead of the full
        parameter bytes.
    aggregation:
        Optional server-side aggregator spec (e.g. ``"trimmed_mean:1"``;
        see :mod:`repro.ps.aggregation`).  ``None``/``"mean"`` keep the
        immediate-apply path; robust aggregators buffer each clock window
        of pushes before applying their combination as one update.
    faults:
        Optional chaos plan — per-worker fault entries as in
        :mod:`repro.ps.faults`.  Crashes deregister the worker at its fault
        clock (the policy re-bounds, exactly as for a real death), gradient
        corruption is injected at the server boundary, and flaky workers
        have their iteration time multiplied by ``scale`` during slow
        phases.  Every fault draws from the run's named RNG streams, so a
        chaos run replays identically from the seed.
    topology:
        Optional network topology for the *time* components: a preset name
        (``"flat"``, ``"two-rack"``, ``"tail-heavy"``), an inline topology
        dict, or a prebuilt :class:`repro.simulation.topology.Topology`.
        ``None`` keeps the flat :class:`NetworkModel` cost path untouched;
        the ``"flat"`` preset builds the degenerate single-link topology
        from the cluster's network, which is bit-for-bit identical to
        ``None`` in virtual time (the parity gate).  Shared rack uplinks
        queue transfers FIFO, and every queueing delay lands in
        ``SimulationResult.queue_trace``.
    comm_pattern:
        ``"ps"`` (default): every iteration pays a push and a pull on the
        worker's server path.  ``"ring_allreduce"``: workers exchange
        ``2*(n-1)`` chunked ring steps per synchronous round instead;
        requires the BSP paradigm (the ring is a synchronous collective),
        a single server shard, and no compression/aggregation/faults.  The
        gradient *math* still flows through the parameter server (whose
        sequential sum a ring reduce-scatter reproduces bit-for-bit on
        identical pushes); only the costed time and wire bytes change.
    profile:
        Attach a per-layer forward/backward profiler
        (:class:`repro.utils.profiler.LayerProfiler`) to the first worker's
        replica and record the breakdown in ``SimulationResult.profile``.
    seed:
        Master seed controlling data order, initialization and jitter.
    """

    cluster: ClusterSpec
    paradigm: str = "dssp"
    paradigm_kwargs: dict = field(default_factory=lambda: {"s_lower": 3, "s_upper": 15})
    epochs: float = 3.0
    epoch_accounting: str = "global"
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    lr_milestones: tuple[float, ...] = ()
    lr_decay: float = 0.1
    evaluate_every_updates: int = 20
    max_updates: int | None = None
    time_scale: float = 1.0
    timing_jitter: bool = True
    timing_cost: object | None = None
    timing_batch_size: int | None = None
    slowdown_schedule: Callable[[str, float], float] | None = None
    num_server_shards: int = 1
    shard_strategy: str = "size"
    dtype: str = "float64"
    use_workspace: bool = True
    profile: bool = False
    compression: str | None = None
    aggregation: str | None = None
    faults: tuple = ()
    topology: str | dict | Topology | None = None
    comm_pattern: str = "ps"
    seed: int = 0

    def __post_init__(self) -> None:
        self.comm_pattern = validate_comm_pattern(self.comm_pattern)
        if self.topology is not None and not isinstance(self.topology, Topology):
            validate_topology_spec(self.topology)
        if self.topology is not None and self.num_server_shards != 1:
            raise ValueError(
                "topology-aware timing models a single server endpoint; "
                "use num_server_shards=1 with a topology"
            )
        if self.comm_pattern == "ring_allreduce":
            if self.paradigm != "bsp":
                raise ValueError(
                    "comm_pattern 'ring_allreduce' is a synchronous collective; "
                    f"it requires paradigm 'bsp', got {self.paradigm!r}"
                )
            if self.cluster.num_workers < 2:
                raise ValueError("ring allreduce needs at least 2 workers")
            if self.compression is not None:
                raise ValueError(
                    "comm_pattern 'ring_allreduce' does not compose with push "
                    "compression (the ring exchanges dense chunks)"
                )
            if self.aggregation is not None:
                raise ValueError(
                    "comm_pattern 'ring_allreduce' does not compose with robust "
                    "aggregation (the ring sums all contributions)"
                )
            if self.faults:
                raise ValueError(
                    "comm_pattern 'ring_allreduce' does not compose with fault "
                    "injection (a ring has no elastic membership)"
                )
            if self.num_server_shards != 1:
                raise ValueError("ring allreduce requires num_server_shards=1")
        if self.compression is not None:
            validate_codec_spec(self.compression)
        if self.aggregation is not None:
            validate_aggregation_spec(self.aggregation)
        self.faults = tuple(self.faults)
        if self.faults:
            parse_fault_specs(
                self.faults, [spec.worker_id for spec in self.cluster.workers]
            )
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.num_server_shards <= 0:
            raise ValueError("num_server_shards must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.max_updates is not None and self.max_updates <= 0:
            raise ValueError("max_updates must be positive when given")
        if self.epoch_accounting not in ("global", "per_worker"):
            raise ValueError(
                f"epoch_accounting must be 'global' or 'per_worker', got {self.epoch_accounting!r}"
            )
        # Fail fast: a typo in the paradigm name or its kwargs must surface
        # here, at config construction, not minutes into a run.
        validate_paradigm(self.paradigm, self.paradigm_kwargs)


@dataclass
class SimulationResult:
    """Everything a simulated run reports."""

    paradigm: str
    paradigm_label: str
    times: np.ndarray
    accuracies: np.ndarray
    losses: np.ndarray
    total_virtual_time: float
    total_updates: int
    throughput: ThroughputSummary
    wait_time_per_worker: dict[str, float]
    iterations_per_worker: dict[str, int]
    mean_loss_per_worker: dict[str, float]
    staleness_summary: object
    server_statistics: dict
    tracker: ExperimentTracker
    trace: SimulationTrace
    controller_decisions: int = 0
    #: Per-worker push/pull transfer accounting (actual encoded byte counts,
    #: matching what the real runtimes report; see repro.metrics.throughput).
    pushed_wire_bytes_per_worker: dict[str, int] = field(default_factory=dict)
    pushed_raw_bytes_per_worker: dict[str, int] = field(default_factory=dict)
    pulled_bytes_per_worker: dict[str, int] = field(default_factory=dict)
    #: Per-layer timing breakdown of the first worker's replica (real
    #: wall-clock compute, not virtual time); None unless profiling was on.
    profile: dict | None = None
    #: Structured fault/membership events (crashes, corrupted pushes,
    #: aggregator rejections) in server observation order; empty when clean.
    events: list = field(default_factory=list)
    #: Tail statistics of per-worker iteration intervals (push-to-push
    #: virtual time, including synchronization waits) pooled across workers.
    iteration_time_summary: PercentileSummary = EMPTY_PERCENTILES
    #: FIFO queueing records of the topology's shared links (one dict per
    #: shared-link traversal: link, arrival, start, wait, nbytes, tag);
    #: empty for flat runs and degenerate topologies with no shared links.
    queue_trace: list = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        """Accuracy of the last evaluation."""
        return float(self.accuracies[-1]) if self.accuracies.size else 0.0

    @property
    def best_accuracy(self) -> float:
        """Best accuracy over the run."""
        return float(self.accuracies.max()) if self.accuracies.size else 0.0

    @property
    def total_wait_time(self) -> float:
        """Sum of all workers' synchronization waiting time."""
        return float(sum(self.wait_time_per_worker.values()))

    def time_to_accuracy(self, target: float) -> float | None:
        """Virtual time needed to reach ``target`` accuracy (None if never)."""
        return time_to_accuracy(self.times, self.accuracies, target)


class SimulatedTraining:
    """Discrete-event simulation of one distributed training run."""

    def __init__(
        self,
        config: SimulationConfig,
        model_builder: Callable[[np.random.Generator], Module],
        train_dataset: ArrayDataset,
        test_dataset: ArrayDataset,
    ) -> None:
        self.config = config
        self.model_builder = model_builder
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self._streams = RngStream(config.seed)
        self._fault_plan = parse_fault_specs(
            config.faults, [spec.worker_id for spec in config.cluster.workers]
        )
        self._injector = (
            FaultInjector(self._fault_plan, self._streams)
            if config.faults
            else None
        )

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _build_server(self, global_model: Module) -> ParameterServer:
        config = self.config
        store = make_store(
            initial_weights={name: p.data for name, p in global_model.named_parameters()},
            initial_buffers=global_model.buffers(),
            num_shards=config.num_server_shards,
            strategy=config.shard_strategy,
            dtype=config.dtype,
        )
        optimizer = SGD(
            learning_rate=config.learning_rate,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        if config.lr_milestones:
            schedule = MultiStepSchedule(
                config.learning_rate, config.lr_milestones, decay=config.lr_decay
            )
        else:
            schedule = ConstantSchedule(config.learning_rate)
        policy = make_policy(config.paradigm, **config.paradigm_kwargs)
        aggregator = (
            make_aggregator(config.aggregation)
            if config.aggregation is not None
            else None
        )
        return ParameterServer(
            store=store,
            optimizer=optimizer,
            policy=policy,
            learning_rate_schedule=schedule,
            aggregator=aggregator,
            fault_injector=self._injector,
        )

    def _build_workers(self, global_model: Module, server: ParameterServer) -> dict[str, Worker]:
        config = self.config
        partitions = partition_dataset(
            self.train_dataset, config.cluster.num_workers, rng=self._streams.get("partition")
        )
        workers: dict[str, Worker] = {}
        for spec, partition in zip(config.cluster.workers, partitions):
            server.register_worker(spec.worker_id)
            loader = MiniBatchLoader(
                partition,
                batch_size=config.batch_size,
                rng=self._streams.get(f"loader-{spec.worker_id}"),
            )
            replica = self.model_builder(self._streams.get(f"model-{spec.worker_id}"))
            replica.load_state_dict(global_model.state_dict())
            worker = Worker(
                worker_id=spec.worker_id,
                model=replica,
                loader=loader,
                loss_fn=SoftmaxCrossEntropy(),
                use_workspace=config.use_workspace,
            )
            if config.compression is not None:
                # One codec per worker: error-feedback residuals are worker
                # state, and the per-worker stream keeps stochastic codecs
                # deterministic.
                codec = make_codec(config.compression)
                codec.reseed(self._streams.get(f"codec-{spec.worker_id}"))
                worker.set_codec(codec)
            workers[spec.worker_id] = worker
        return workers

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        config = self.config
        global_model = self.model_builder(self._streams.get("init"))
        eval_model = self.model_builder(self._streams.get("eval"))
        if config.use_workspace:
            eval_model.enable_workspace()
        server = self._build_server(global_model)
        workers = self._build_workers(global_model, server)
        profiler = None
        if config.profile:
            from repro.utils.profiler import LayerProfiler

            first_worker = next(iter(workers.values()))
            profiler = LayerProfiler(
                first_worker.model, loss_fn=first_worker.loss_fn
            ).attach()

        sample_shape = self.train_dataset.sample_shape
        cost = config.timing_cost or estimate_model_cost(global_model, sample_shape)
        store = server.store
        if getattr(store, "num_shards", 1) > 1:
            # Per-shard transfer cost: the simulated push/pull is gated by
            # the most-loaded shard, with the split taken from the router.
            total_bytes = max(store.nbytes, 1)
            # Empty shards transfer nothing and cannot gate the operation.
            shard_fractions = tuple(
                nbytes / total_bytes for nbytes in store.shard_nbytes if nbytes > 0
            ) or (1.0,)
        else:
            shard_fractions = (1.0,)
        push_wire_fraction = 1.0
        if config.compression is not None:
            # The codec's a-priori estimate of encoded-vs-dense push bytes;
            # clamped because the time model treats >1 as a spec error (an
            # inflating codec still pays at most the dense charge).
            push_wire_fraction = min(1.0, make_codec(config.compression).wire_fraction())
        # The topology path replaces only the *cost* model; the flat path is
        # kept verbatim when no topology (and no collective pattern) is
        # requested so existing runs stay bit-for-bit.
        topo_model: TopologyTimeModel | None = None
        if config.topology is not None or config.comm_pattern != "ps":
            worker_ids = [spec.worker_id for spec in config.cluster.workers]
            topology = build_topology(
                config.topology if config.topology is not None else "flat",
                worker_ids,
                config.cluster.workers[0].network,
            )
            topo_model = TopologyTimeModel(
                cost,
                batch_size=config.timing_batch_size or config.batch_size,
                topology=topology,
                time_scale=config.time_scale,
                push_wire_fraction=push_wire_fraction,
                comm_pattern=config.comm_pattern,
                worker_ids=worker_ids,
            )
        time_model = IterationTimeModel(
            cost,
            batch_size=config.timing_batch_size or config.batch_size,
            time_scale=config.time_scale,
            shard_fractions=shard_fractions,
            push_wire_fraction=push_wire_fraction,
        )
        timing_rng = self._streams.get("timing") if config.timing_jitter else None

        partition_size = len(self.train_dataset) // config.cluster.num_workers
        iterations_per_worker = max(
            1, int(np.ceil(config.epochs * partition_size / config.batch_size))
        )
        total_update_budget = max(
            1, int(np.ceil(config.epochs * len(self.train_dataset) / config.batch_size))
        )
        if config.epoch_accounting == "global":
            # Workers keep iterating until the global update budget is spent;
            # a fast worker may contribute more updates than its own share.
            quota = {worker_id: total_update_budget for worker_id in workers}
        else:
            quota = {worker_id: iterations_per_worker for worker_id in workers}

        clock = VirtualClock()
        queue = EventQueue()
        trace = SimulationTrace()
        tracker = ExperimentTracker()

        blocked_since: dict[str, float] = {}
        wait_time: dict[str, float] = {worker_id: 0.0 for worker_id in workers}
        iterations_done: dict[str, int] = {worker_id: 0 for worker_id in workers}
        loss_sum: dict[str, float] = {worker_id: 0.0 for worker_id in workers}
        samples_processed = 0
        last_eval_update = -1

        crash_at = self._fault_plan.crash_at()

        def iteration_time(worker_id: str, now: float) -> float:
            spec = config.cluster.worker(worker_id)
            if topo_model is not None:
                duration = topo_model.iteration_time(
                    spec,
                    rng=timing_rng,
                    now=now,
                    round_index=iterations_done[worker_id],
                )
            else:
                duration = time_model.iteration_time(spec, rng=timing_rng)
            if config.slowdown_schedule is not None:
                factor = float(config.slowdown_schedule(worker_id, now))
                if factor <= 0:
                    raise ValueError(
                        f"slowdown_schedule returned non-positive factor {factor} "
                        f"for worker {worker_id!r}"
                    )
                duration *= factor
            flaky = self._fault_plan.flaky_for(worker_id)
            if flaky is not None and flaky.slow(iterations_done[worker_id]):
                duration *= flaky.scale
            return duration

        def evaluate(now: float) -> None:
            nonlocal last_eval_update
            # Zero-copy state views: load_state_dict copies them into the
            # evaluation model's own arrays.
            eval_model.load_state_dict(dict(server.store.state_views()))
            accuracy, loss = evaluate_model(
                eval_model, self.test_dataset, batch_size=max(config.batch_size, 64)
            )
            tracker.record("accuracy", now, accuracy, step=server.store.version)
            tracker.record("test_loss", now, loss, step=server.store.version)
            trace.record(now, "evaluation", accuracy=accuracy, loss=loss)
            last_eval_update = server.store.version

        def schedule_push(worker_id: str, now: float) -> None:
            queue.push(
                Event(
                    time=now + iteration_time(worker_id, now),
                    kind=EventKind.PUSH_ARRIVAL,
                    worker_id=worker_id,
                )
            )

        delta_pulls = bool(getattr(server.store, "supports_delta_pull", False))
        # Mirror the store's packed layout in every replica so full pulls
        # move one buffer per shard instead of N named arrays.
        flat_layouts = getattr(server.store, "flat_layouts", None)
        if flat_layouts:
            for worker in workers.values():
                worker.attach_flat_layout(flat_layouts)

        def pull_into(worker_id: str) -> None:
            """Refresh a worker's replica (delta pull when the store can)."""
            worker = workers[worker_id]
            request = None
            if delta_pulls:
                request = PullRequest(worker_id=worker_id, known_version=worker.local_version)
            worker.load_reply(server.handle_pull(request))

        def release_worker(worker_id: str, now: float, waited: float) -> None:
            wait_time[worker_id] += waited
            trace.record(now, "release", worker_id=worker_id, wait_time=waited)
            pull_into(worker_id)
            if iterations_done[worker_id] < quota[worker_id]:
                schedule_push(worker_id, now)

        # Initial pulls and first pushes.  One pull per worker: replies are
        # consumed (and their copy-on-write leases released) by load_reply,
        # so a shared reply must not outlive the first consumer.
        for worker_id, worker in workers.items():
            worker.load_reply(server.handle_pull())
            schedule_push(worker_id, 0.0)
        evaluate(0.0)

        if config.epoch_accounting == "global":
            max_updates = config.max_updates or total_update_budget
        else:
            max_updates = config.max_updates or (iterations_per_worker * len(workers))
        while queue and server.store.version < max_updates:
            event = queue.pop()
            clock.advance_to(event.time)
            now = clock.now
            if event.kind is not EventKind.PUSH_ARRIVAL:
                continue
            worker_id = event.worker_id
            crash_clock = crash_at.get(worker_id)
            if crash_clock is not None and iterations_done[worker_id] >= crash_clock:
                # The worker dies at its fault clock: its push never lands,
                # any staged (unapplied) contribution is rejected, and the
                # policy re-bounds exactly as for a real runtime death.
                self._injector.record(
                    "crash", worker_id, clock=iterations_done[worker_id], time=now
                )
                trace.record(now, "crash", worker_id=worker_id)
                server.discard_staged(worker_id)
                for released_id in server.deregister_worker(worker_id):
                    waited = now - blocked_since.pop(released_id, now)
                    release_worker(released_id, now, waited)
                continue
            worker = workers[worker_id]

            computation = worker.compute_gradients()
            samples_processed += computation.samples
            progress_epochs = samples_processed / max(len(self.train_dataset), 1)
            server.set_progress(progress_epochs)

            flat_gradients, encoded, codec_name = worker.prepare_push(computation)
            response = server.handle_push(
                PushRequest(
                    worker_id=worker_id,
                    gradients=computation.gradients,
                    base_version=computation.base_version,
                    timestamp=now,
                    buffers=computation.buffers,
                    local_loss=computation.loss,
                    flat_gradients=flat_gradients,
                    encoded_gradients=encoded,
                    codec=codec_name,
                )
            )
            iterations_done[worker_id] += 1
            loss_sum[worker_id] += computation.loss
            tracker.record("train_loss", now, computation.loss, step=server.store.version)
            trace.record(
                now,
                "push",
                worker_id=worker_id,
                staleness=response.staleness,
                version=response.new_version,
            )

            if response.release_now:
                pull_into(worker_id)
                if iterations_done[worker_id] < quota[worker_id]:
                    schedule_push(worker_id, now)
            else:
                blocked_since[worker_id] = now
                trace.record(now, "block", worker_id=worker_id)

            for released_id in response.released_workers:
                waited = now - blocked_since.pop(released_id, now)
                release_worker(released_id, now, waited)

            if (
                config.evaluate_every_updates > 0
                and server.store.version - last_eval_update >= config.evaluate_every_updates
            ):
                evaluate(now)

        # Any still-blocked workers are released at the end of the run so
        # their waiting time up to the final event is accounted for.
        final_time = clock.now
        for worker_id, since in list(blocked_since.items()):
            wait_time[worker_id] += final_time - since
        # A buffered aggregator may hold a partially-filled tail window;
        # apply it so the final evaluation sees every surviving push.
        server.flush_staged()
        if server.store.version != last_eval_update:
            evaluate(final_time)

        accuracy_series = tracker.series("accuracy")
        loss_series = tracker.series("test_loss")
        throughput = iteration_throughput(
            total_updates=server.store.version,
            total_time=max(final_time, 1e-12),
            samples_per_update=config.batch_size,
        )
        policy = server.policy
        controller_decisions = (
            len(policy.controller_decisions())
            if isinstance(policy, DynamicStaleSynchronousParallel)
            else 0
        )
        profile = None
        if profiler is not None:
            profiler.detach()
            profile = {
                "worker_id": next(iter(workers)),
                **profiler.as_dict(),
            }
        # Tail statistics of iteration intervals: per-worker push-to-push
        # virtual time (the first interval measured from t=0), pooled across
        # workers — this is what the topology sweeps' p50/p90/p99 report.
        interval_samples: list[float] = []
        for worker_id in workers:
            times = trace.push_times(worker_id)
            if times.size:
                interval_samples.extend(np.diff(times, prepend=0.0).tolist())
        iteration_time_summary = percentile_summary(interval_samples)

        pushed_wire = {
            worker_id: worker.pushed_wire_bytes
            for worker_id, worker in workers.items()
        }
        pushed_raw = {
            worker_id: worker.pushed_raw_bytes
            for worker_id, worker in workers.items()
        }
        pulled = {
            worker_id: worker.pulled_bytes for worker_id, worker in workers.items()
        }
        if topo_model is not None and config.comm_pattern == "ring_allreduce":
            # Model-costed ring accounting: each round wires
            # 2*(n-1)/n * payload per worker and pulls nothing from a server
            # (the substrate's PS transfers never happen on the simulated
            # wire).  Raw bytes stay the dense payload per iteration.
            ring_wire = topo_model.ring_wire_bytes_per_iteration()
            payload = float(topo_model.cost.parameter_bytes)
            pushed_wire = {
                worker_id: int(round(iterations_done[worker_id] * ring_wire))
                for worker_id in workers
            }
            pushed_raw = {
                worker_id: int(round(iterations_done[worker_id] * payload))
                for worker_id in workers
            }
            pulled = {worker_id: 0 for worker_id in workers}

        label = paradigm_label(config.paradigm, config.paradigm_kwargs)
        _LOGGER.info(
            "%s finished: %.0f virtual seconds, %d updates, final accuracy %.3f",
            label,
            final_time,
            server.store.version,
            accuracy_series.values[-1] if len(accuracy_series) else 0.0,
        )
        return SimulationResult(
            paradigm=config.paradigm,
            paradigm_label=label,
            times=accuracy_series.times,
            accuracies=accuracy_series.values,
            losses=loss_series.values,
            total_virtual_time=final_time,
            total_updates=server.store.version,
            throughput=throughput,
            wait_time_per_worker=dict(wait_time),
            iterations_per_worker=dict(iterations_done),
            mean_loss_per_worker={
                worker_id: loss_sum[worker_id] / iterations_done[worker_id]
                if iterations_done[worker_id]
                else 0.0
                for worker_id in workers
            },
            staleness_summary=server.staleness_tracker.summary(),
            server_statistics=server.statistics(),
            tracker=tracker,
            trace=trace,
            controller_decisions=controller_decisions,
            pushed_wire_bytes_per_worker=pushed_wire,
            pushed_raw_bytes_per_worker=pushed_raw,
            pulled_bytes_per_worker=pulled,
            profile=profile,
            events=list(self._injector.events) if self._injector else [],
            iteration_time_summary=iteration_time_summary,
            queue_trace=list(topo_model.state.queue_trace) if topo_model else [],
        )


#: Backwards-compatible alias; the label helper lives with the policy
#: registry so every front end renders run labels identically.
_paradigm_label = paradigm_label


def simulate_training(
    config: SimulationConfig,
    model_builder: Callable[[np.random.Generator], Module],
    train_dataset: ArrayDataset,
    test_dataset: ArrayDataset,
) -> SimulationResult:
    """Convenience wrapper: build and run a :class:`SimulatedTraining`."""
    return SimulatedTraining(config, model_builder, train_dataset, test_dataset).run()
