"""Model cost estimation and the per-iteration time model.

The paper's Section V-C attributes the opposite throughput orderings of the
paradigms to the *ratio of computing time to communication time* per
iteration: FC-bearing networks (AlexNet) move many parameters but compute
little, pure CNNs (ResNets) compute a lot but move few parameters.  To make
that ratio emerge from first principles rather than be hard-coded, this
module walks a model's layer structure, propagates activation shapes and
counts the floating-point operations of a forward+backward pass as well as
the bytes of the parameter payload.  The iteration time model then combines
the FLOP count with a device profile and the payload with a network model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.container import Identity, Residual, Sequential
from repro.nn.conv import Conv2d
from repro.nn.dropout import Dropout
from repro.nn.flatten import Flatten
from repro.nn.functional import conv_output_size
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.normalization import BatchNorm1d, BatchNorm2d
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.simulation.cluster import WorkerSpec

__all__ = ["ModelCost", "estimate_model_cost", "IterationTimeModel"]

# Backward pass costs roughly twice the forward pass (gradient w.r.t. inputs
# and w.r.t. weights); 3x forward is the standard engineering estimate.
_BACKWARD_MULTIPLIER = 3.0
_BYTES_PER_PARAMETER = 4  # float32 on the wire, as in MXNet.


@dataclass(frozen=True)
class ModelCost:
    """Computation and communication cost of one model."""

    flops_per_sample: float
    num_parameters: int
    parameter_bytes: int

    def iteration_flops(self, batch_size: int) -> float:
        """Forward+backward FLOPs of one mini-batch."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return self.flops_per_sample * batch_size

    @property
    def communication_ratio_hint(self) -> float:
        """Bytes moved per FLOP computed — large for FC-heavy models."""
        return self.parameter_bytes / max(self.flops_per_sample, 1.0)


def _forward_flops(module: Module, shape: tuple[int, ...]) -> tuple[float, tuple[int, ...]]:
    """FLOPs of one sample through ``module`` plus the output shape.

    ``shape`` excludes the batch dimension: ``(C, H, W)`` for images or
    ``(D,)`` for flat features.
    """
    if isinstance(module, Sequential):
        total = 0.0
        for child in module:
            flops, shape = _forward_flops(child, shape)
            total += flops
        return total, shape
    if isinstance(module, Residual):
        body_flops, body_shape = _forward_flops(module.body, shape)
        shortcut_flops, shortcut_shape = _forward_flops(module.shortcut, shape)
        if body_shape != shortcut_shape:
            raise ValueError(
                f"residual branches disagree on output shape: {body_shape} vs {shortcut_shape}"
            )
        add_flops = float(np.prod(body_shape))
        return body_flops + shortcut_flops + add_flops, body_shape
    if isinstance(module, Conv2d):
        channels, height, width = shape
        out_h = conv_output_size(height, module.kernel_size, module.stride, module.padding)
        out_w = conv_output_size(width, module.kernel_size, module.stride, module.padding)
        flops = (
            2.0
            * module.out_channels
            * out_h
            * out_w
            * channels
            * module.kernel_size
            * module.kernel_size
        )
        return flops, (module.out_channels, out_h, out_w)
    if isinstance(module, Linear):
        flops = 2.0 * module.in_features * module.out_features
        return flops, (module.out_features,)
    if isinstance(module, (MaxPool2d, AvgPool2d)):
        channels, height, width = shape
        out_h = conv_output_size(height, module.kernel_size, module.stride, module.padding)
        out_w = conv_output_size(width, module.kernel_size, module.stride, module.padding)
        flops = float(channels * out_h * out_w * module.kernel_size * module.kernel_size)
        return flops, (channels, out_h, out_w)
    if isinstance(module, GlobalAvgPool2d):
        channels, height, width = shape
        return float(channels * height * width), (channels,)
    if isinstance(module, Flatten):
        return 0.0, (int(np.prod(shape)),)
    if isinstance(module, (BatchNorm1d, BatchNorm2d)):
        return 4.0 * float(np.prod(shape)), shape
    if isinstance(module, (ReLU, LeakyReLU, Sigmoid, Tanh, Dropout)):
        return float(np.prod(shape)), shape
    if isinstance(module, Identity):
        return 0.0, shape
    # Unknown leaf modules contribute an element-wise pass as a conservative
    # default so custom layers do not break cost estimation.
    return float(np.prod(shape)), shape


def estimate_model_cost(model: Module, input_shape: tuple[int, ...]) -> ModelCost:
    """Estimate per-sample forward+backward FLOPs and the parameter payload.

    ``input_shape`` excludes the batch dimension, e.g. ``(3, 32, 32)``.
    """
    if not input_shape:
        raise ValueError("input_shape must not be empty")
    forward, _ = _forward_flops(model, tuple(int(dim) for dim in input_shape))
    num_parameters = model.num_parameters()
    return ModelCost(
        flops_per_sample=forward * _BACKWARD_MULTIPLIER,
        num_parameters=num_parameters,
        parameter_bytes=num_parameters * _BYTES_PER_PARAMETER,
    )


class IterationTimeModel:
    """Combines a model cost with worker hardware into per-iteration times."""

    def __init__(
        self,
        cost: ModelCost,
        batch_size: int,
        time_scale: float = 1.0,
        shard_fractions: tuple[float, ...] = (1.0,),
        push_wire_fraction: float = 1.0,
    ) -> None:
        """Create the time model.

        ``time_scale`` uniformly stretches all times; the experiment harness
        uses it to map the scaled-down models onto second-scale iteration
        times comparable to the paper's axes without affecting any ratio.

        ``shard_fractions`` describes how the parameter payload is split
        across server shards (each entry is one shard's fraction of the
        total payload); the default ``(1.0,)`` models the monolithic single
        server.  Per-shard transfers run in parallel, so communication time
        is gated by the most-loaded shard — the fractions come straight
        from the sharded store's router.

        ``push_wire_fraction`` scales only the *push* leg's payload — the
        gradient a compressing codec ships
        (:meth:`repro.ps.compression.GradientCodec.wire_fraction`); pulls
        stay dense.  The default 1.0 charges both directions identically
        and draws the same jitter sequence as the historical model, so
        uncompressed simulations are bit-for-bit unchanged.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if not shard_fractions or any(f <= 0 for f in shard_fractions):
            raise ValueError("shard_fractions must be non-empty and positive")
        if not np.isclose(sum(shard_fractions), 1.0, atol=1e-6):
            raise ValueError(
                f"shard_fractions must sum to 1, got {sum(shard_fractions)}"
            )
        if not 0.0 < push_wire_fraction <= 1.0:
            raise ValueError(
                f"push_wire_fraction must be in (0, 1], got {push_wire_fraction}"
            )
        self.cost = cost
        self.batch_size = int(batch_size)
        self.time_scale = float(time_scale)
        self.shard_fractions = tuple(float(f) for f in shard_fractions)
        self.push_wire_fraction = float(push_wire_fraction)

    def compute_time(self, spec: WorkerSpec, rng: np.random.Generator | None = None) -> float:
        """Gradient-computation time of one iteration on ``spec``'s device.

        The worker's local GPUs split the mini-batch evenly, so more GPUs per
        worker shorten compute time (as in the paper's 4-GPU workers).
        """
        flops = self.cost.iteration_flops(self.batch_size) / spec.gpus_per_worker
        return self.time_scale * spec.device.compute_time(flops, rng=rng)

    def communication_time(
        self, spec: WorkerSpec, rng: np.random.Generator | None = None
    ) -> float:
        """Push + pull transfer time of one iteration over ``spec``'s link.

        The push leg carries ``push_wire_fraction`` of the dense payload
        (codec-compressed gradients), the pull leg always the dense
        weights.  Jitter draws happen push-first in both branches — the
        same count and order as the uncompressed model, which keeps runs
        with ``push_wire_fraction=1.0`` bit-for-bit reproducible.
        """
        push_scale = self.push_wire_fraction
        if self.shard_fractions == (1.0,):
            push = spec.network.transfer_time(
                self.cost.parameter_bytes * push_scale, rng=rng
            )
            pull = spec.network.transfer_time(self.cost.parameter_bytes, rng=rng)
            return self.time_scale * (push + pull)
        shard_bytes = [
            self.cost.parameter_bytes * fraction for fraction in self.shard_fractions
        ]
        push = spec.network.sharded_transfer_time(
            [nbytes * push_scale for nbytes in shard_bytes], rng=rng
        )
        pull = spec.network.sharded_transfer_time(shard_bytes, rng=rng)
        return self.time_scale * (push + pull)

    def iteration_time(self, spec: WorkerSpec, rng: np.random.Generator | None = None) -> float:
        """Total busy time of one iteration (compute plus communication)."""
        return self.compute_time(spec, rng=rng) + self.communication_time(spec, rng=rng)

    def compute_to_communication_ratio(self, spec: WorkerSpec) -> float:
        """The ratio the paper's Section V-C discussion is based on."""
        return self.compute_time(spec) / max(self.communication_time(spec), 1e-12)
