"""Shared utilities: seeded RNG management, logging, timing, serialization."""

from repro.utils.rng import RngStream, seed_everything, spawn_rng
from repro.utils.timing import Stopwatch, format_seconds
from repro.utils.profiler import LayerProfiler, LayerTiming
from repro.utils.logging import get_logger
from repro.utils.serialization import (
    flatten_state,
    state_num_parameters,
    state_nbytes,
    states_allclose,
    clone_state,
)
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
)

__all__ = [
    "RngStream",
    "seed_everything",
    "spawn_rng",
    "Stopwatch",
    "format_seconds",
    "LayerProfiler",
    "LayerTiming",
    "get_logger",
    "flatten_state",
    "state_num_parameters",
    "state_nbytes",
    "states_allclose",
    "clone_state",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
]
