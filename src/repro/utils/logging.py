"""Library-wide logging configuration.

The library never configures the root logger; it attaches a ``NullHandler``
to its own namespace so applications stay in control of output.  The helper
:func:`get_logger` optionally installs a simple stream handler for scripts
and examples.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "enable_console_logging"]

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``name`` may be a module ``__name__`` (already prefixed) or a short
    suffix such as ``"ps.server"``.
    """
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stderr handler to the library logger (for scripts/examples)."""
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    has_stream = any(
        isinstance(handler, logging.StreamHandler)
        and not isinstance(handler, logging.NullHandler)
        for handler in logger.handlers
    )
    if not has_stream:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger
