"""Lightweight per-layer forward/backward profiler.

:class:`LayerProfiler` wraps the ``forward``/``backward`` methods of every
*leaf* module in a model (and optionally the loss) with
``time.perf_counter`` bracketing, accumulating per-layer call counts and
seconds.  Wrapping is per *instance* — an attribute shadowing the class
method — so attaching never mutates classes, composes with any layer type,
and :meth:`LayerProfiler.detach` restores the original behaviour exactly.

The overhead is two clock reads per call (~100 ns), negligible against the
millisecond-scale numpy kernels it measures, so the profiler is safe to
leave attached for a whole training run.  It is exposed end-to-end as
``python -m repro run SPEC --profile``, which attaches it to worker-0's
replica and records the breakdown in ``RunResult.profile``.

>>> profiler = LayerProfiler(model, loss_fn=loss)
>>> with profiler:
...     train_some_steps()
>>> print(profiler.report())
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.nn.module import Module

__all__ = ["LayerTiming", "LayerProfiler", "render_profile"]


def render_profile(profile: dict, top: int | None = 10) -> str:
    """Render a recorded profile dict (``LayerProfiler.as_dict`` /
    ``RunResult.profile``) as a plain-text table of the slowest layers.

    The one formatter shared by :meth:`LayerProfiler.report` and the CLI's
    ``--profile`` output, so the two cannot drift.
    """
    layers = profile.get("layers", [])
    if top is not None:
        layers = layers[:top]
    forward = profile.get("forward_seconds", 0.0)
    backward = profile.get("backward_seconds", 0.0)
    total = profile.get("total_seconds", forward + backward)
    shown = sum(layer["total_seconds"] for layer in layers)
    lines = [
        f"{'layer':<32} {'kind':<16} {'fwd (s)':>9} {'bwd (s)':>9} "
        f"{'total (s)':>10} {'share':>7}"
    ]
    for layer in layers:
        share = layer["total_seconds"] / total if total > 0 else 0.0
        lines.append(
            f"{layer['name']:<32} {layer['kind']:<16} "
            f"{layer['forward_seconds']:>9.3f} {layer['backward_seconds']:>9.3f} "
            f"{layer['total_seconds']:>10.3f} {share:>6.1%}"
        )
    covered = shown / total if total > 0 else 1.0
    lines.append(
        f"{'TOTAL':<32} {'':<16} {forward:>9.3f} {backward:>9.3f} "
        f"{total:>10.3f} {covered:>6.1%}"
    )
    return "\n".join(lines)


@dataclass
class LayerTiming:
    """Accumulated timings of one profiled layer (or loss)."""

    name: str
    kind: str
    forward_calls: int = 0
    forward_seconds: float = 0.0
    backward_calls: int = 0
    backward_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Forward plus backward seconds."""
        return self.forward_seconds + self.backward_seconds

    def to_dict(self) -> dict:
        """JSON-compatible rendering."""
        return {
            "name": self.name,
            "kind": self.kind,
            "forward_calls": self.forward_calls,
            "forward_seconds": self.forward_seconds,
            "backward_calls": self.backward_calls,
            "backward_seconds": self.backward_seconds,
            "total_seconds": self.total_seconds,
        }


@dataclass
class _Wrapped:
    """Bookkeeping for one instance-level method wrap."""

    target: object
    attribute: str
    original: object = field(default=None)


class LayerProfiler:
    """Times every leaf module's forward and backward passes.

    Containers (``Sequential``, ``Residual``) are skipped so the recorded
    seconds are *exclusive* — they sum to the model total without double
    counting.  ``loss_fn`` (any object with ``forward``/``backward``) is
    profiled under the name ``"<loss>"`` when given.
    """

    def __init__(self, model: Module, loss_fn=None) -> None:
        self.model = model
        self.loss_fn = loss_fn
        self._timings: dict[int, LayerTiming] = {}
        self._wrapped: list[_Wrapped] = []
        self._attached = False

    # ------------------------------------------------------------------
    # Attach / detach
    # ------------------------------------------------------------------
    def attach(self) -> "LayerProfiler":
        """Wrap the leaf modules (idempotent)."""
        if self._attached:
            return self
        for name, module in self.model.named_modules():
            if module._modules:  # container: children carry the time
                continue
            timing = self._timing_for(module, name or "<root>", type(module).__name__)
            self._wrap(module, "forward", timing)
            self._wrap(module, "backward", timing)
        if self.loss_fn is not None:
            timing = self._timing_for(
                self.loss_fn, "<loss>", type(self.loss_fn).__name__
            )
            self._wrap(self.loss_fn, "forward", timing)
            self._wrap(self.loss_fn, "backward", timing)
        self._attached = True
        return self

    def detach(self) -> "LayerProfiler":
        """Remove every wrapper, restoring the original methods."""
        for wrapped in reversed(self._wrapped):
            try:
                delattr(wrapped.target, wrapped.attribute)
            except AttributeError:  # pragma: no cover - already removed
                pass
        self._wrapped.clear()
        self._attached = False
        return self

    def __enter__(self) -> "LayerProfiler":
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.detach()

    def _timing_for(self, target, name: str, kind: str) -> LayerTiming:
        key = id(target)
        if key not in self._timings:
            self._timings[key] = LayerTiming(name=name, kind=kind)
        return self._timings[key]

    def _wrap(self, target, attribute: str, timing: LayerTiming) -> None:
        original = getattr(target, attribute)
        if attribute == "forward":
            def timed(*args, _original=original, _timing=timing, **kwargs):
                start = time.perf_counter()
                try:
                    return _original(*args, **kwargs)
                finally:
                    _timing.forward_seconds += time.perf_counter() - start
                    _timing.forward_calls += 1
        else:
            def timed(*args, _original=original, _timing=timing, **kwargs):
                start = time.perf_counter()
                try:
                    return _original(*args, **kwargs)
                finally:
                    _timing.backward_seconds += time.perf_counter() - start
                    _timing.backward_calls += 1
        # Instance attribute shadows the class method; detach deletes it.
        setattr(target, attribute, timed)
        self._wrapped.append(_Wrapped(target=target, attribute=attribute))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def timings(self) -> list[LayerTiming]:
        """Per-layer timings, slowest first."""
        return sorted(
            self._timings.values(), key=lambda t: t.total_seconds, reverse=True
        )

    @property
    def forward_seconds(self) -> float:
        """Total profiled forward seconds."""
        return sum(t.forward_seconds for t in self._timings.values())

    @property
    def backward_seconds(self) -> float:
        """Total profiled backward seconds."""
        return sum(t.backward_seconds for t in self._timings.values())

    def as_dict(self) -> dict:
        """JSON-compatible summary (what ``RunResult.profile`` records)."""
        return {
            "forward_seconds": self.forward_seconds,
            "backward_seconds": self.backward_seconds,
            "total_seconds": self.forward_seconds + self.backward_seconds,
            "layers": [timing.to_dict() for timing in self.timings()],
        }

    def report(self, top: int | None = 10) -> str:
        """Human-readable table of the slowest layers."""
        return render_profile(self.as_dict(), top=top)
