"""Deterministic random-number management.

Every stochastic component in the library (data generation, weight
initialization, simulated iteration-time jitter, augmentation) draws from an
explicit :class:`numpy.random.Generator` rather than the global NumPy state,
so experiments are reproducible and independent components do not perturb
each other's streams.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["RngStream", "seed_everything", "spawn_rng"]


def seed_everything(seed: int) -> np.random.Generator:
    """Seed Python's and NumPy's global RNGs and return a fresh generator.

    The returned generator should be preferred over the globals; the globals
    are seeded only as a safety net for third-party code.
    """
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))
    return np.random.default_rng(seed)


def spawn_rng(parent: np.random.Generator, index: int) -> np.random.Generator:
    """Derive a child generator from ``parent`` deterministically.

    Children with different ``index`` values produce independent streams, and
    the same ``(parent state, index)`` pair always yields the same child.
    """
    seed_seq = np.random.SeedSequence(
        entropy=int(parent.integers(0, 2**31 - 1)), spawn_key=(index,)
    )
    return np.random.default_rng(seed_seq)


class RngStream:
    """A named family of random generators derived from one master seed.

    Components request a stream by name; the same name always maps to the
    same generator state for a given master seed, regardless of the order in
    which streams are requested.

    Example
    -------
    >>> streams = RngStream(seed=123)
    >>> a = streams.get("data")
    >>> b = streams.get("init")
    >>> a is streams.get("data")
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._generators: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Master seed this stream family was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator associated with ``name``, creating it lazily."""
        if name not in self._generators:
            entropy = (self._seed, _stable_hash(name))
            self._generators[name] = np.random.default_rng(
                np.random.SeedSequence(entropy)
            )
        return self._generators[name]

    def reset(self) -> None:
        """Forget all derived generators; subsequent ``get`` calls start fresh."""
        self._generators.clear()


def _stable_hash(name: str) -> int:
    """Hash a string to a 63-bit integer, stable across processes.

    Python's built-in ``hash`` is salted per process, so it cannot be used
    for reproducible seeding.
    """
    value = 0
    for ch in name.encode("utf-8"):
        value = (value * 131 + ch) % (2**63 - 1)
    return value
