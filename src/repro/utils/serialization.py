"""Helpers for manipulating model state dictionaries.

A *state* is an ordered mapping ``{parameter_name: numpy.ndarray}``.  The
parameter server, the optimizers and the simulator all exchange state in
this form, so these helpers are the common currency of the library.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping

import numpy as np

__all__ = [
    "clone_state",
    "flatten_state",
    "unflatten_like",
    "state_num_parameters",
    "state_nbytes",
    "states_allclose",
    "add_states",
    "scale_state",
]

State = Mapping[str, np.ndarray]


def clone_state(state: State) -> "OrderedDict[str, np.ndarray]":
    """Deep-copy a state dictionary."""
    return OrderedDict((name, np.array(array, copy=True)) for name, array in state.items())


def flatten_state(state: State) -> np.ndarray:
    """Concatenate every array in ``state`` into one flat float64 vector."""
    if not state:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([np.asarray(array, dtype=np.float64).ravel() for array in state.values()])


def unflatten_like(vector: np.ndarray, reference: State) -> "OrderedDict[str, np.ndarray]":
    """Reshape a flat vector back into the shapes of ``reference``.

    Raises ``ValueError`` if the vector length does not match the total
    number of parameters in the reference state.
    """
    total = state_num_parameters(reference)
    vector = np.asarray(vector).ravel()
    if vector.size != total:
        raise ValueError(
            f"vector has {vector.size} elements but reference state has {total}"
        )
    result: OrderedDict[str, np.ndarray] = OrderedDict()
    offset = 0
    for name, array in reference.items():
        size = array.size
        result[name] = vector[offset : offset + size].reshape(array.shape).astype(array.dtype)
        offset += size
    return result


def state_num_parameters(state: State) -> int:
    """Total number of scalar parameters in a state."""
    return int(sum(array.size for array in state.values()))


def state_nbytes(state: State) -> int:
    """Total bytes occupied by the arrays in a state."""
    return int(sum(array.nbytes for array in state.values()))


def states_allclose(left: State, right: State, rtol: float = 1e-6, atol: float = 1e-8) -> bool:
    """True if two states have identical keys and element-wise close values."""
    if set(left.keys()) != set(right.keys()):
        return False
    return all(
        np.allclose(left[name], right[name], rtol=rtol, atol=atol) for name in left
    )


def add_states(left: State, right: State) -> "OrderedDict[str, np.ndarray]":
    """Element-wise sum of two states with identical keys/shapes."""
    if set(left.keys()) != set(right.keys()):
        raise ValueError("cannot add states with different parameter names")
    return OrderedDict((name, left[name] + right[name]) for name in left)


def scale_state(state: State, factor: float) -> "OrderedDict[str, np.ndarray]":
    """Multiply every array in a state by ``factor``."""
    return OrderedDict((name, array * factor) for name, array in state.items())
