"""Small timing helpers used by the thread-based runtime and the examples."""

from __future__ import annotations

import time

__all__ = ["Stopwatch", "format_seconds"]


class Stopwatch:
    """Monotonic stopwatch with lap support.

    >>> watch = Stopwatch()
    >>> watch.start()
    >>> elapsed = watch.elapsed()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._laps: list[float] = []

    def start(self) -> "Stopwatch":
        """Start (or restart) the stopwatch and clear laps."""
        self._start = time.monotonic()
        self._laps.clear()
        return self

    def elapsed(self) -> float:
        """Seconds since :meth:`start`; 0.0 if never started."""
        if self._start is None:
            return 0.0
        return time.monotonic() - self._start

    def lap(self) -> float:
        """Record and return the elapsed time as a lap."""
        value = self.elapsed()
        self._laps.append(value)
        return value

    @property
    def laps(self) -> list[float]:
        """All recorded lap times, in order."""
        return list(self._laps)


def format_seconds(seconds: float) -> str:
    """Render a duration as ``1h02m03.4s`` / ``2m03.4s`` / ``3.4s``."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    hours, rem = divmod(seconds, 3600)
    minutes, secs = divmod(rem, 60)
    if hours >= 1:
        return f"{int(hours)}h{int(minutes):02d}m{secs:04.1f}s"
    if minutes >= 1:
        return f"{int(minutes)}m{secs:04.1f}s"
    return f"{secs:.1f}s"
