"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
]


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value
