"""Tests for the pluggable backends and the unified RunResult schema."""

import numpy as np
import pytest

from repro.api import (
    Backend,
    ClusterConfig,
    ExperimentSpec,
    ProcessBackend,
    RunResult,
    SimulatedBackend,
    ThreadedBackend,
    available_backends,
    get_backend,
    register_backend,
    run_experiment,
)

TINY_SPEC = ExperimentSpec(
    name="backend-test",
    workload="mlp",
    scale="tiny",
    cluster=ClusterConfig(num_workers=2, gpus_per_worker=1),
    paradigm="dssp",
    paradigm_kwargs={"s_lower": 1, "s_upper": 4},
    epochs=1.0,
    batch_size=16,
    evaluate_every_updates=10,
    seed=0,
)


@pytest.fixture(scope="module")
def simulated_result():
    return run_experiment(TINY_SPEC, "simulated")


@pytest.fixture(scope="module")
def threaded_result():
    return run_experiment(TINY_SPEC, "threaded")


@pytest.fixture(scope="module")
def process_result():
    return run_experiment(TINY_SPEC, "process")


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == ["simulated", "threaded", "process", "tcp"]

    def test_get_backend_instances_protocol(self):
        assert isinstance(get_backend("simulated"), Backend)
        assert isinstance(get_backend("threaded"), Backend)
        assert isinstance(get_backend("process"), Backend)
        assert isinstance(get_backend("tcp"), Backend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("simulated")(SimulatedBackend)


class TestSimulatedBackend:
    def test_runs_and_reports(self, simulated_result):
        result = simulated_result
        assert result.backend == "simulated"
        assert result.paradigm == "dssp"
        assert result.total_updates > 0
        assert result.times[0] == 0.0
        assert len(result.times) == len(result.accuracies) == len(result.losses)
        assert set(result.iterations_per_worker) == {"worker-0", "worker-1"}
        assert result.provenance.spec == TINY_SPEC.to_dict()
        assert result.provenance.injected == ()

    def test_deterministic_given_seed(self, simulated_result):
        again = run_experiment(TINY_SPEC, SimulatedBackend())
        assert again.total_time == simulated_result.total_time
        np.testing.assert_allclose(again.accuracies, simulated_result.accuracies)

    def test_slowdowns_skew_iteration_counts(self):
        spec = TINY_SPEC.replace(
            paradigm="asp",
            paradigm_kwargs={},
            evaluate_every_updates=0,
            slowdowns={"worker-0": 4.0},
        )
        result = run_experiment(spec, "simulated")
        iterations = result.iterations_per_worker
        assert iterations["worker-0"] < iterations["worker-1"]


class TestThreadedBackend:
    def test_runs_and_reports(self, threaded_result):
        result = threaded_result
        assert result.backend == "threaded"
        assert result.errors == []
        assert result.total_updates == 20  # 2 workers x 10 iterations
        # Curve starts with the initial model and ends with the final one.
        assert result.times[0] == 0.0
        assert result.times[-1] == pytest.approx(result.total_time)
        assert result.accuracies.size >= 2

    def test_epochs_converted_to_iterations(self, threaded_result):
        # tiny scale: 320 train samples, 2 workers, batch 16 -> 10 per worker.
        assert threaded_result.iterations_per_worker == {
            "worker-0": 10,
            "worker-1": 10,
        }

    def test_lr_milestones_rejected_rather_than_silently_dropped(self):
        spec = TINY_SPEC.replace(lr_milestones=(0.5,))
        with pytest.raises(ValueError, match="lr_milestones"):
            run_experiment(spec, "threaded")
        # The simulated backend supports them.
        assert run_experiment(spec, "simulated").total_updates > 0

    def test_max_updates_rejected_rather_than_silently_dropped(self):
        spec = TINY_SPEC.replace(max_updates=5)
        with pytest.raises(ValueError, match="max_updates"):
            run_experiment(spec, "threaded")
        assert run_experiment(spec, "simulated").total_updates == 5


class TestProcessBackend:
    def test_runs_and_reports(self, process_result):
        result = process_result
        assert result.backend == "process"
        assert result.errors == []
        assert result.total_updates == 20  # 2 workers x 10 iterations
        assert result.times[0] == 0.0
        assert result.times[-1] == pytest.approx(result.total_time)
        assert result.accuracies.size >= 2
        assert result.iterations_per_worker == {"worker-0": 10, "worker-1": 10}

    def test_schema_matches_threaded(self, process_result, threaded_result):
        assert TestBackendParity.schema(process_result.to_dict()) == (
            TestBackendParity.schema(threaded_result.to_dict())
        )

    def test_lr_milestones_and_max_updates_rejected(self):
        with pytest.raises(ValueError, match="lr_milestones"):
            run_experiment(TINY_SPEC.replace(lr_milestones=(0.5,)), "process")
        with pytest.raises(ValueError, match="max_updates"):
            run_experiment(TINY_SPEC.replace(max_updates=5), "process")

    def test_injected_workload_rejected(self):
        from repro.experiments.workloads import build_workload

        workload = build_workload("mlp", TINY_SPEC.resolved_scale())
        with pytest.raises(ValueError, match="injected workload"):
            run_experiment(TINY_SPEC, "process", workload=workload)

    def test_pipe_transport_equivalent_schema(self):
        result = run_experiment(TINY_SPEC, ProcessBackend(transport="pipe"))
        assert result.errors == []
        assert result.total_updates == 20

    def test_no_shared_memory_leaked(self, process_result):
        import os

        del process_result  # the run has completed by fixture resolution
        leaked = [
            name for name in os.listdir("/dev/shm") if name.startswith("repro-")
        ] if os.path.isdir("/dev/shm") else []
        assert leaked == []

    def test_staleness_and_wait_times_reported(self, process_result):
        assert process_result.staleness.count == process_result.total_updates
        assert set(process_result.wait_time_per_worker) == {"worker-0", "worker-1"}


class TestTcpBackend:
    @pytest.fixture(scope="class")
    def tcp_result(self):
        return run_experiment(TINY_SPEC, "tcp")

    def test_runs_and_reports(self, tcp_result):
        result = tcp_result
        assert result.backend == "tcp"
        assert result.errors == []
        assert result.total_updates == 20  # 2 workers x 10 iterations
        assert result.times[0] == 0.0
        assert result.times[-1] == pytest.approx(result.total_time)
        assert result.iterations_per_worker == {"worker-0": 10, "worker-1": 10}
        assert result.staleness.count == result.total_updates

    def test_schema_matches_process(self, tcp_result, process_result):
        assert TestBackendParity.schema(tcp_result.to_dict()) == (
            TestBackendParity.schema(process_result.to_dict())
        )

    def test_transport_field_tcp_accepted(self):
        result = run_experiment(TINY_SPEC.replace(transport="tcp"), "tcp")
        assert result.errors == []

    def test_transport_field_mailbox_rejected(self):
        with pytest.raises(ValueError, match="tcp backend"):
            run_experiment(TINY_SPEC.replace(transport="shm"), "tcp")

    def test_sharding_rejected(self):
        with pytest.raises(ValueError, match="monolithic"):
            run_experiment(TINY_SPEC.replace(num_shards=4), "tcp")

    def test_injected_workload_rejected(self):
        from repro.experiments.workloads import build_workload

        workload = build_workload("mlp", TINY_SPEC.resolved_scale())
        with pytest.raises(ValueError, match="injected workload"):
            run_experiment(TINY_SPEC, "tcp", workload=workload)


class TestTransportSpecField:
    def test_spec_transport_overrides_process_default(self):
        # ProcessBackend defaults to shm; the spec can demand pipe.
        result = run_experiment(TINY_SPEC.replace(transport="pipe"), "process")
        assert result.errors == []
        assert result.total_updates == 20

    def test_spec_transport_tcp_rejected_on_process(self):
        with pytest.raises(ValueError, match="tcp backend"):
            run_experiment(TINY_SPEC.replace(transport="tcp"), "process")

    @pytest.mark.parametrize("backend", ["simulated", "threaded"])
    def test_spec_transport_rejected_on_non_process(self, backend):
        with pytest.raises(ValueError, match="transport"):
            run_experiment(TINY_SPEC.replace(transport="shm"), backend)


class TestBackendParity:
    """The same spec yields schema-identical results on both backends."""

    @staticmethod
    def schema(payload, prefix=""):
        """All key paths of a nested dict (list elements collapse to [])."""
        paths = set()
        if isinstance(payload, dict):
            for key, value in payload.items():
                paths.add(f"{prefix}{key}")
                paths |= TestBackendParity.schema(value, prefix=f"{prefix}{key}.")
        elif isinstance(payload, list) and payload:
            paths |= TestBackendParity.schema(payload[0], prefix=f"{prefix}[].")
        return paths

    def test_schema_identical_field_for_field(self, simulated_result, threaded_result):
        simulated = simulated_result.to_dict()
        threaded = threaded_result.to_dict()
        assert self.schema(simulated) == self.schema(threaded)

    def test_dataclass_fields_and_types_match(self, simulated_result, threaded_result):
        import dataclasses

        assert type(simulated_result) is type(threaded_result) is RunResult
        for entry in dataclasses.fields(RunResult):
            simulated_value = getattr(simulated_result, entry.name)
            threaded_value = getattr(threaded_result, entry.name)
            assert type(simulated_value) is type(threaded_value), entry.name

    def test_same_workers_and_update_totals(self, simulated_result, threaded_result):
        assert set(simulated_result.wait_time_per_worker) == set(
            threaded_result.wait_time_per_worker
        )
        assert simulated_result.total_updates == threaded_result.total_updates

    def test_staleness_and_throughput_shapes(self, simulated_result, threaded_result):
        for result in (simulated_result, threaded_result):
            assert result.staleness.count == result.total_updates
            assert result.throughput.updates_per_second > 0
            assert result.throughput.samples_per_second == pytest.approx(
                result.throughput.updates_per_second * 16
            )

    def test_provenance_differs_only_in_backend(self, simulated_result, threaded_result):
        simulated = simulated_result.provenance.to_dict()
        threaded = threaded_result.provenance.to_dict()
        assert simulated.pop("backend") == "simulated"
        assert threaded.pop("backend") == "threaded"
        assert simulated == threaded


class TestCompression:
    """Push codecs thread through every backend (tentpole integration)."""

    def test_transfers_reported_by_all_backends(
        self, simulated_result, threaded_result, process_result
    ):
        for result in (simulated_result, threaded_result, process_result):
            transfers = result.transfers
            assert transfers.pushed_wire_bytes > 0
            assert transfers.pushed_wire_bytes == transfers.pushed_raw_bytes
            assert transfers.pulled_bytes > 0
            assert transfers.compression_ratio == 1.0
            assert set(transfers.pushed_wire_bytes_per_worker) == {
                "worker-0",
                "worker-1",
            }
            payload = result.to_dict()["transfers"]
            assert payload["pushed_wire_bytes"] == transfers.pushed_wire_bytes
            assert payload["compression_ratio"] == 1.0

    def test_none_codec_equivalent_threaded(self, threaded_result):
        # The threaded runtime is wall-clock scheduled, so run-to-run curves
        # wobble slightly even without a codec; the bit-for-bit guarantee is
        # asserted on the deterministic simulator and at the server level
        # (tests/ps/test_compression.py).  Here: same work, same bytes, no
        # inflation of the wire size.
        result = run_experiment(TINY_SPEC.replace(compression="none"), "threaded")
        assert result.errors == []
        assert result.total_updates == threaded_result.total_updates
        assert result.transfers.compression_ratio == 1.0
        assert result.transfers.pushed_wire_bytes == (
            threaded_result.transfers.pushed_wire_bytes
        )

    def test_none_codec_bit_for_bit_simulated(self, simulated_result):
        result = run_experiment(TINY_SPEC.replace(compression="none"), "simulated")
        np.testing.assert_array_equal(result.accuracies, simulated_result.accuracies)
        np.testing.assert_array_equal(result.times, simulated_result.times)
        assert result.total_time == simulated_result.total_time

    def test_topk_cuts_wire_bytes_threaded(self, threaded_result):
        result = run_experiment(TINY_SPEC.replace(compression="topk:0.05"), "threaded")
        assert result.errors == []
        assert result.transfers.compression_ratio > 8.0
        assert result.transfers.pushed_raw_bytes == (
            threaded_result.transfers.pushed_raw_bytes
        )

    def test_topk_cuts_wire_and_virtual_time_simulated(self, simulated_result):
        result = run_experiment(TINY_SPEC.replace(compression="topk:0.05"), "simulated")
        assert result.transfers.compression_ratio > 8.0
        # The simulator charges the network for encoded bytes, so the
        # virtual time shrinks relative to the dense run.
        assert result.total_time < simulated_result.total_time

    def test_codecs_run_on_process_backend(self, process_result):
        result = run_experiment(TINY_SPEC.replace(compression="topk:0.05"), "process")
        assert result.errors == []
        assert result.total_updates == process_result.total_updates
        assert result.transfers.compression_ratio > 8.0

    def test_int8_process_pipe_transport(self):
        result = run_experiment(
            TINY_SPEC.replace(compression="int8"), ProcessBackend(transport="pipe")
        )
        assert result.errors == []
        assert 6.0 < result.transfers.compression_ratio < 9.0


class TestRunResultSerialization:
    def test_to_dict_json_safe(self, simulated_result):
        import json

        payload = json.loads(json.dumps(simulated_result.to_dict()))
        assert payload["backend"] == "simulated"
        assert payload["provenance"]["spec"]["workload"] == "mlp"
        assert len(payload["times"]) == len(payload["accuracies"])

    def test_transitional_aliases(self, simulated_result):
        assert simulated_result.total_virtual_time == simulated_result.total_time
        assert simulated_result.staleness_summary is simulated_result.staleness


class TestRobustness:
    """The aggregation/faults spec surface through the backends."""

    CHAOS = TINY_SPEC.replace(
        cluster=ClusterConfig(num_workers=3, gpus_per_worker=1),
        aggregation="trimmed_mean:1",
        faults=(
            {"worker": 1, "kind": "byzantine", "mode": "sign_flip", "after_clock": 2},
            {"worker": 2, "kind": "crash", "after_clock": 4},
        ),
    )

    def test_clean_runs_have_empty_events(self, simulated_result, threaded_result):
        assert simulated_result.events == []
        assert threaded_result.events == []

    def test_mean_aggregator_bit_for_bit_no_op_simulated(self, simulated_result):
        # The simulator is deterministic, so this is an exact gate: a spec
        # with aggregation="mean" must replay the aggregation-less run.
        result = run_experiment(TINY_SPEC.replace(aggregation="mean"), "simulated")
        assert np.array_equal(result.accuracies, simulated_result.accuracies)
        assert np.array_equal(result.losses, simulated_result.losses)
        assert result.total_updates == simulated_result.total_updates
        assert result.server_statistics["aggregation"]["windows_applied"] == 0

    def test_mean_aggregator_keeps_the_fast_path_threaded(self, threaded_result):
        # Thread scheduling makes wall-clock runs non-replayable, so the
        # gate here is structural: no buffering, no events, same totals.
        result = run_experiment(TINY_SPEC.replace(aggregation="mean"), "threaded")
        assert result.errors == [] and result.events == []
        assert result.total_updates == threaded_result.total_updates
        assert result.server_statistics["aggregation"]["windows_applied"] == 0

    @pytest.mark.parametrize("backend", ["simulated", "threaded", "process", "tcp"])
    def test_chaos_run_reports_events(self, backend):
        result = run_experiment(self.CHAOS, backend)
        kinds = {event["kind"] for event in result.events}
        assert "crash" in kinds
        assert "corrupted_push" in kinds
        assert all({"kind", "worker"} <= set(event) for event in result.events)
        # An injected crash is chaos, not failure — on every backend,
        # including tcp where the server sees the dropped connection.
        assert result.errors == []
        # The crashed worker stops early; the survivors finish their quota.
        iterations = result.iterations_per_worker
        assert iterations["worker-2"] < max(iterations.values())
        assert result.server_statistics["aggregation"]["windows_applied"] > 0

    def test_events_survive_wire_serialization(self):
        result = run_experiment(self.CHAOS, "process")
        import json

        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["events"] == result.events


class TestProfilePlumbing:
    """``profile=True`` records a per-layer breakdown on every backend."""

    PROFILE_KEYS = {"worker_id", "forward_seconds", "backward_seconds",
                    "total_seconds", "layers"}

    def test_unprofiled_runs_record_none(self, simulated_result, threaded_result):
        assert simulated_result.profile is None
        assert threaded_result.profile is None
        assert simulated_result.to_dict()["profile"] is None

    @pytest.mark.parametrize("backend", ["simulated", "threaded", "process"])
    def test_profile_recorded_per_backend(self, backend):
        result = run_experiment(TINY_SPEC, backend, profile=True)
        profile = result.profile
        assert profile is not None
        assert set(profile) == self.PROFILE_KEYS
        assert profile["worker_id"] == "worker-0"
        assert profile["layers"], "expected per-layer entries"
        names = {layer["name"] for layer in profile["layers"]}
        assert "<loss>" in names
        assert profile["total_seconds"] == pytest.approx(
            profile["forward_seconds"] + profile["backward_seconds"]
        )
        # The breakdown must survive JSON serialization with the result.
        import json

        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["profile"]["worker_id"] == "worker-0"

    def test_profiling_does_not_change_the_run(self):
        plain = run_experiment(TINY_SPEC, "simulated")
        profiled = run_experiment(TINY_SPEC, "simulated", profile=True)
        assert np.array_equal(plain.accuracies, profiled.accuracies)
        assert np.array_equal(plain.losses, profiled.losses)
        assert plain.total_updates == profiled.total_updates


class TestNetFaultsSpecField:
    @pytest.mark.parametrize("backend", ["simulated", "threaded"])
    def test_rejected_on_backends_without_network(self, backend):
        with pytest.raises(ValueError, match="no network"):
            run_experiment(
                TINY_SPEC.replace(net_faults=({"spec": "delay:5"},)), backend
            )

    def test_process_shm_transport_rejected(self):
        # shm pushes never cross a connection: demand the pipe transport.
        with pytest.raises(ValueError, match="transport='pipe'"):
            run_experiment(
                TINY_SPEC.replace(net_faults=({"spec": "delay:5"},)), "process"
            )

    def test_process_pipe_rejects_unsupported_kinds(self):
        with pytest.raises(ValueError, match="pipe transport"):
            run_experiment(
                TINY_SPEC.replace(
                    transport="pipe", net_faults=({"spec": "partition:1,1"},)
                ),
                "process",
            )

    def test_process_pipe_delay_runs_clean(self):
        result = run_experiment(
            TINY_SPEC.replace(transport="pipe", net_faults=({"spec": "delay:1"},)),
            "process",
        )
        assert result.errors == []
        assert result.total_updates == 20

    def test_process_pipe_drop_is_a_permanent_leave(self):
        # Pipes cannot reconnect, so a dropped worker leaves for good; the
        # survivor finishes and the drop shows up as a structured event.
        result = run_experiment(
            TINY_SPEC.replace(
                transport="pipe", net_faults=({"spec": "drop", "worker": 0},)
            ),
            "process",
        )
        assert result.errors == []
        kinds = [event["kind"] for event in result.events]
        assert "net_drop" in kinds
        assert result.iterations_per_worker["worker-1"] == 10

    def test_tcp_drop_reconnects_and_completes(self):
        result = run_experiment(
            TINY_SPEC.replace(net_faults=({"spec": "drop", "worker": 0},)), "tcp"
        )
        assert result.errors == []
        kinds = [event["kind"] for event in result.events]
        assert "net_drop" in kinds
        assert "reconnect" in kinds
        assert result.iterations_per_worker == {"worker-0": 10, "worker-1": 10}
