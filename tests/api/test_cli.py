"""Tests for the ``python -m repro`` command line."""

import json
import socket
import threading

import pytest

from repro.api.cli import main
from repro.api.spec import ClusterConfig, ExperimentSpec


@pytest.fixture()
def spec_path(tmp_path):
    spec = ExperimentSpec(
        name="cli-test",
        workload="mlp",
        scale="tiny",
        cluster=ClusterConfig(num_workers=2, gpus_per_worker=1),
        paradigm="bsp",
        paradigm_kwargs={},
        epochs=0.5,
        batch_size=16,
        evaluate_every_updates=0,
        seed=0,
    )
    return spec.save(tmp_path / "spec.json")


class TestRun:
    def test_run_simulated_writes_result(self, spec_path, tmp_path, capsys):
        output = tmp_path / "result.json"
        code = main(["run", str(spec_path), "--backend", "simulated", "--output", str(output)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "backend   : simulated" in printed
        payload = json.loads(output.read_text())
        assert payload["backend"] == "simulated"
        assert payload["paradigm"] == "bsp"
        assert payload["provenance"]["spec"]["name"] == "cli-test"

    def test_run_threaded(self, spec_path, capsys):
        code = main(["run", str(spec_path), "--backend", "threaded"])
        assert code == 0
        assert "backend   : threaded" in capsys.readouterr().out

    def test_run_with_profile_prints_breakdown(self, spec_path, tmp_path, capsys):
        output = tmp_path / "result.json"
        code = main(
            ["run", str(spec_path), "--backend", "threaded", "--profile",
             "--output", str(output)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "per-layer compute breakdown" in printed
        assert "<loss>" in printed
        payload = json.loads(output.read_text())
        assert payload["profile"]["worker_id"] == "worker-0"
        assert payload["profile"]["layers"]

    def test_seed_override_recorded(self, spec_path, tmp_path):
        output = tmp_path / "result.json"
        code = main(["run", str(spec_path), "--seed", "9", "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["provenance"]["seed"] == 9

    def test_missing_spec_fails_cleanly(self, tmp_path, capsys):
        code = main(["run", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestValidate:
    def test_valid_spec_ok(self, spec_path, capsys):
        assert main(["validate", str(spec_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_spec_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"workload": "mlp", "paradgim": "bsp"}))
        assert main(["validate", str(bad)]) == 2
        assert "unknown spec key" in capsys.readouterr().err

    def test_unknown_workload_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"workload": "alexnett"}))
        assert main(["validate", str(bad)]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_bad_paradigm_kwargs_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"paradigm": "ssp", "paradigm_kwargs": {"stalness": 3}})
        )
        assert main(["validate", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestCompressionFlag:
    def test_run_with_compression_reports_ratio(self, spec_path, tmp_path, capsys):
        output = tmp_path / "result.json"
        code = main(
            ["run", str(spec_path), "--backend", "threaded",
             "--compression", "topk:0.05", "--output", str(output)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "compression       : topk:0.05" in printed
        payload = json.loads(output.read_text())
        assert payload["provenance"]["spec"]["compression"] == "topk:0.05"
        transfers = payload["transfers"]
        assert transfers["pushed_wire_bytes"] > 0
        assert transfers["compression_ratio"] > 5.0

    def test_unknown_codec_fails_cleanly(self, spec_path, capsys):
        code = main(["run", str(spec_path), "--compression", "gzip"])
        assert code == 2
        # The error names the accepted codecs (satellite requirement).
        assert "topk" in capsys.readouterr().err


class TestRegistry:
    def test_lists_components(self, capsys):
        assert main(["registry"]) == 0
        printed = capsys.readouterr().out
        for expected in ("simulated", "threaded", "dssp", "alexnet", "resnet110", "p100"):
            assert expected in printed

    def test_lists_codecs(self, capsys):
        assert main(["registry"]) == 0
        printed = capsys.readouterr().out
        assert "codecs:" in printed
        for codec in ("none", "fp16", "int8", "topk", "significance"):
            assert codec in printed

    def test_lists_all_backends_in_registration_order(self, capsys):
        assert main(["registry"]) == 0
        printed = capsys.readouterr().out
        backends_block = printed.split("paradigms:")[0]
        assert backends_block.startswith("backends:")
        listed = [line.strip() for line in backends_block.splitlines()[1:] if line.strip()]
        assert listed == ["simulated", "threaded", "process", "tcp"]

    def test_lists_transports(self, capsys):
        assert main(["registry"]) == 0
        assert "transports: shm, pipe, tcp" in capsys.readouterr().out


class TestRunProcessBackend:
    def test_run_process_writes_result(self, spec_path, tmp_path, capsys):
        output = tmp_path / "result.json"
        code = main(
            ["run", str(spec_path), "--backend", "process", "--output", str(output)]
        )
        assert code == 0
        assert "backend   : process" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert payload["backend"] == "process"
        assert payload["errors"] == []
        assert payload["provenance"]["spec"]["name"] == "cli-test"

    def test_process_is_an_accepted_backend_choice(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "spec.json", "--backend", "quantum"])
        assert "process" in capsys.readouterr().err


class TestTransportFlag:
    def test_run_process_with_pipe_transport(self, spec_path, tmp_path, capsys):
        output = tmp_path / "result.json"
        code = main(
            ["run", str(spec_path), "--backend", "process",
             "--transport", "pipe", "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["errors"] == []
        assert payload["provenance"]["spec"]["transport"] == "pipe"

    def test_tcp_transport_on_process_backend_redirects(self, spec_path, capsys):
        code = main(
            ["run", str(spec_path), "--backend", "process", "--transport", "tcp"]
        )
        assert code == 2
        # The error points at the right invocation, not just "invalid".
        assert "--backend tcp" in capsys.readouterr().err

    def test_transport_rejected_on_simulated_backend(self, spec_path, capsys):
        code = main(
            ["run", str(spec_path), "--backend", "simulated", "--transport", "shm"]
        )
        assert code == 2
        assert "transport" in capsys.readouterr().err

    def test_address_requires_tcp_backend(self, spec_path, capsys):
        code = main(
            ["run", str(spec_path), "--backend", "process",
             "--address", "127.0.0.1:5555"]
        )
        assert code == 2
        assert "--backend tcp" in capsys.readouterr().err


class TestTcpBackendCli:
    def test_run_tcp_writes_result(self, spec_path, tmp_path, capsys):
        output = tmp_path / "result.json"
        code = main(["run", str(spec_path), "--backend", "tcp", "--output", str(output)])
        assert code == 0
        assert "backend   : tcp" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert payload["backend"] == "tcp"
        assert payload["errors"] == []
        assert payload["transfers"]["pushed_wire_bytes"] > 0

    def test_serve_then_run_against_it(self, spec_path, tmp_path, capsys):
        # Full CLI loop: 'serve' hosts the parameter server, 'run
        # --backend tcp --address' points the workers at it.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            address = "127.0.0.1:%d" % probe.getsockname()[1]
        serve_code = []
        server = threading.Thread(
            target=lambda: serve_code.append(
                main(["serve", str(spec_path), "--bind", address])
            ),
            daemon=True,
        )
        server.start()
        output = tmp_path / "result.json"
        code = main(
            ["run", str(spec_path), "--backend", "tcp",
             "--address", address, "--output", str(output)]
        )
        server.join(timeout=60.0)
        assert not server.is_alive(), "serve never returned"
        assert code == 0
        assert serve_code == [0]
        payload = json.loads(output.read_text())
        assert payload["backend"] == "tcp"
        assert payload["errors"] == []
        printed = capsys.readouterr().out
        assert f"on {address}" in printed
        assert "run complete" in printed

    def test_serve_checkpoint_every_requires_checkpoint(self, spec_path, capsys):
        code = main(["serve", str(spec_path), "--checkpoint-every", "5"])
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err


class TestNetFaultsFlag:
    def test_argument_parsing(self):
        from repro.api.cli import _parse_net_fault_argument

        assert _parse_net_fault_argument("delay:5") == {"spec": "delay:5"}
        assert _parse_net_fault_argument("1=drop:0.5") == {
            "spec": "drop:0.5",
            "worker": 1,
        }
        assert _parse_net_fault_argument("worker-1=drop") == {
            "spec": "drop",
            "worker": "worker-1",
        }

    def test_rejected_on_simulated_backend(self, spec_path, capsys):
        code = main(
            ["run", str(spec_path), "--backend", "simulated",
             "--net-faults", "delay:5"]
        )
        assert code == 2
        assert "no network" in capsys.readouterr().err

    def test_tcp_run_with_delay_fault(self, spec_path, tmp_path, capsys):
        output = tmp_path / "result.json"
        code = main(
            ["run", str(spec_path), "--backend", "tcp",
             "--net-faults", "delay:1", "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["errors"] == []
        assert payload["provenance"]["spec"]["net_faults"] == [{"spec": "delay:1"}]


class TestSupervisedServe:
    def test_supervise_requires_checkpoint(self, spec_path, capsys):
        code = main(["serve", str(spec_path), "--supervise"])
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_supervised_serve_then_run(self, spec_path, tmp_path, capsys):
        # The happy path of watchdog mode: the supervised server hosts an
        # uninterrupted run exactly like a bare 'serve' would.  (The
        # kill -9 path is exercised in tests/ps/test_tcp_runtime.py and
        # the chaos-net-smoke CI job.)
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            address = "127.0.0.1:%d" % probe.getsockname()[1]
        serve_code = []
        server = threading.Thread(
            target=lambda: serve_code.append(
                main(
                    ["serve", str(spec_path), "--bind", address,
                     "--supervise", "--checkpoint",
                     str(tmp_path / "supervised.npz")]
                )
            ),
            daemon=True,
        )
        server.start()
        output = tmp_path / "result.json"
        code = main(
            ["run", str(spec_path), "--backend", "tcp",
             "--address", address, "--output", str(output)]
        )
        server.join(timeout=120.0)
        assert not server.is_alive(), "supervised serve never returned"
        assert code == 0
        assert serve_code == [0]
        printed = capsys.readouterr().out
        assert "supervising" in printed
        assert "server pid" in printed
        payload = json.loads(output.read_text())
        assert payload["errors"] == []
