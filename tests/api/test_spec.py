"""Tests for the declarative ExperimentSpec (validation + serialization)."""

import pytest

from repro.api.spec import ClusterConfig, ExperimentSpec, NAMED_SCALES
from repro.experiments.config import TINY


class TestClusterConfig:
    def test_homogeneous_build(self):
        cluster = ClusterConfig(kind="homogeneous", num_workers=3, device="p100").build()
        assert cluster.num_workers == 3
        assert {spec.device.name for spec in cluster.workers} == {"p100"}

    def test_heterogeneous_build(self):
        config = ClusterConfig(
            kind="heterogeneous", devices=("gtx1080ti", "gtx1060"), network="ethernet"
        )
        cluster = config.build()
        assert cluster.is_heterogeneous
        assert config.worker_ids == ["worker-0", "worker-1"]

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(kind="galactic")

    def test_heterogeneous_requires_devices(self):
        with pytest.raises(ValueError):
            ClusterConfig(kind="heterogeneous", devices=())

    def test_unknown_network_rejected_at_build(self):
        config = ClusterConfig(network="carrier-pigeon")
        with pytest.raises(ValueError, match="unknown network"):
            config.build()

    def test_round_trip(self):
        config = ClusterConfig(kind="heterogeneous", devices=("p100", "gtx1060"))
        assert ClusterConfig.from_dict(config.to_dict()) == config

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown cluster key"):
            ClusterConfig.from_dict({"kind": "homogeneous", "wokers": 3})

    def test_from_cluster_spec_round_trips_shape(self):
        original = ClusterConfig(
            kind="heterogeneous", devices=("gtx1080ti", "gtx1060"), network="ethernet"
        ).build()
        recovered = ClusterConfig.from_cluster_spec(original)
        assert recovered.kind == "heterogeneous"
        assert recovered.devices == ("gtx1080ti", "gtx1060")
        assert recovered.network == "ethernet"


class TestSpecValidation:
    def test_defaults_valid(self):
        spec = ExperimentSpec()
        assert spec.resolved_scale() is NAMED_SCALES["tiny"]
        assert spec.label == "DSSP s=3, r=12"

    def test_bad_paradigm_kwargs_fail_fast(self):
        with pytest.raises(TypeError):
            ExperimentSpec(paradigm="ssp", paradigm_kwargs={"stalness": 3})
        with pytest.raises(ValueError):
            ExperimentSpec(paradigm="ssp", paradigm_kwargs={})
        with pytest.raises(ValueError):
            ExperimentSpec(paradigm="gossip")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            ExperimentSpec(scale="gigantic")

    def test_inline_scale_dict(self):
        spec = ExperimentSpec(
            scale={
                "name": "custom",
                "num_train": 64,
                "num_test": 32,
                "image_size": 8,
                "num_classes_cifar100": 10,
                "model_width": 4,
                "fc_width": 8,
                "resnet_depth_for_110": 8,
                "resnet_depth_for_50": 8,
                "epochs": 1.0,
                "batch_size": 8,
                "evaluate_every_updates": 4,
            }
        )
        assert spec.resolved_scale().num_train == 64
        assert spec.resolved_epochs() == 1.0

    def test_scale_object_canonicalized_to_dict(self):
        spec = ExperimentSpec(scale=TINY)
        assert isinstance(spec.scale, dict)
        assert spec.resolved_scale() == TINY
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_bad_scale_type_rejected(self):
        with pytest.raises(ValueError, match="scale must be"):
            ExperimentSpec(scale=42)

    def test_scale_defaults_flow_through(self):
        spec = ExperimentSpec(scale="tiny")
        assert spec.resolved_epochs() == TINY.epochs
        assert spec.resolved_batch_size() == TINY.batch_size
        assert spec.resolved_evaluate_every_updates() == TINY.evaluate_every_updates

    def test_overrides_beat_scale(self):
        spec = ExperimentSpec(scale="tiny", epochs=0.5, batch_size=8, evaluate_every_updates=0)
        assert spec.resolved_epochs() == 0.5
        assert spec.resolved_batch_size() == 8
        assert spec.resolved_evaluate_every_updates() == 0

    def test_slowdowns_validated_against_cluster(self):
        with pytest.raises(ValueError, match="nonexistent workers"):
            ExperimentSpec(
                cluster=ClusterConfig(num_workers=2), slowdowns={"worker-9": 0.01}
            )
        with pytest.raises(ValueError, match="must be positive"):
            ExperimentSpec(
                cluster=ClusterConfig(num_workers=2), slowdowns={"worker-1": 0.0}
            )
        spec = ExperimentSpec(
            cluster=ClusterConfig(num_workers=2), slowdowns={"worker-1": 0.5}
        )
        assert spec.slowdowns == {"worker-1": 0.5}

    def test_numeric_validation(self):
        with pytest.raises(ValueError):
            ExperimentSpec(epochs=0.0)
        with pytest.raises(ValueError):
            ExperimentSpec(batch_size=-1)
        with pytest.raises(ValueError):
            ExperimentSpec(num_shards=0)
        with pytest.raises(ValueError):
            ExperimentSpec(epoch_accounting="sideways")

    def test_replace_revalidates(self):
        spec = ExperimentSpec()
        with pytest.raises(ValueError):
            spec.replace(paradigm="nope")
        assert spec.replace(seed=7).seed == 7

    def test_compression_validated(self):
        assert ExperimentSpec(compression="topk:0.01").compression == "topk:0.01"
        assert ExperimentSpec().compression is None
        with pytest.raises(ValueError, match="available codecs"):
            ExperimentSpec(compression="gzip")
        with pytest.raises(ValueError, match="density"):
            ExperimentSpec(compression="topk:1.5")

    def test_compression_survives_round_trip(self):
        spec = ExperimentSpec(compression="int8:chunk=512")
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["compression"] == "int8:chunk=512"

    def test_aggregation_validated(self):
        assert ExperimentSpec(aggregation="trimmed_mean:1").aggregation == "trimmed_mean:1"
        assert ExperimentSpec().aggregation is None
        with pytest.raises(ValueError, match="available aggregators"):
            ExperimentSpec(aggregation="krum")
        with pytest.raises(ValueError, match="tau"):
            ExperimentSpec(aggregation="clip:0")

    def test_faults_validated_against_cluster(self):
        spec = ExperimentSpec(
            cluster=ClusterConfig(num_workers=2),
            faults=({"worker": 1, "kind": "crash", "after_clock": 3},),
        )
        assert spec.faults == ({"worker": 1, "kind": "crash", "after_clock": 3},)
        with pytest.raises(ValueError, match="out of range"):
            ExperimentSpec(
                cluster=ClusterConfig(num_workers=2),
                faults=({"worker": 5, "kind": "crash"},),
            )
        with pytest.raises(ValueError, match="corruption mode"):
            ExperimentSpec(faults=({"worker": 0, "kind": "byzantine"},))

    def test_aggregation_and_faults_survive_round_trip(self):
        spec = ExperimentSpec(
            aggregation="median",
            faults=(
                {"worker": 0, "kind": "byzantine", "mode": "sign_flip"},
                {"worker": 1, "kind": "flaky", "scale": 2.0, "period": 3},
            ),
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.to_dict()["aggregation"] == "median"
        assert restored.faults[0]["mode"] == "sign_flip"

    def test_transport_validated(self):
        assert ExperimentSpec(transport="pipe").transport == "pipe"
        assert ExperimentSpec(transport="  SHM ").transport == "shm"
        assert ExperimentSpec().transport is None
        with pytest.raises(ValueError, match="carrier-pigeon"):
            ExperimentSpec(transport="carrier-pigeon")

    def test_transport_survives_round_trip(self):
        spec = ExperimentSpec(transport="pipe")
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["transport"] == "pipe"

    def test_cluster_address_and_heartbeat_validated(self):
        cluster = ClusterConfig(address="0.0.0.0:5555", heartbeat_timeout=3.0)
        assert cluster.address == "0.0.0.0:5555"
        with pytest.raises(ValueError, match="host:port"):
            ClusterConfig(address="localhost")
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            ClusterConfig(heartbeat_timeout=0.0)

    def test_cluster_address_survives_round_trip(self):
        config = ClusterConfig(address="127.0.0.1:7777", heartbeat_timeout=2.5)
        assert ClusterConfig.from_dict(config.to_dict()) == config


class TestSpecSerialization:
    @pytest.fixture()
    def spec(self):
        return ExperimentSpec(
            name="round-trip",
            workload="alexnet",
            workload_kwargs={"seed": 3},
            scale="small",
            cluster=ClusterConfig(
                kind="heterogeneous", devices=("gtx1080ti", "gtx1060"), network="ethernet"
            ),
            paradigm="ssp",
            paradigm_kwargs={"staleness": 5},
            epochs=2.5,
            batch_size=64,
            lr_milestones=(1.5, 2.0),
            evaluate_every_updates=12,
            num_shards=4,
            shard_strategy="hash",
            dtype="float32",
            slowdowns={"worker-1": 0.25},
            seed=11,
        )

    def test_dict_round_trip_is_identity(self, spec):
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_identity(self, spec):
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, spec, tmp_path):
        path = spec.save(tmp_path / "spec.json")
        assert ExperimentSpec.load(path) == spec

    def test_unknown_key_rejected(self, spec):
        data = spec.to_dict()
        data["paradgim"] = "bsp"
        with pytest.raises(ValueError, match="unknown spec key"):
            ExperimentSpec.from_dict(data)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ExperimentSpec.load(tmp_path / "missing.json")

    def test_to_dict_is_json_safe(self, spec):
        import json

        encoded = json.dumps(spec.to_dict())
        assert "round-trip" in encoded

    def test_lr_milestones_survive_as_tuple(self, spec):
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored.lr_milestones == (1.5, 2.0)
        assert isinstance(restored.lr_milestones, tuple)


class TestNetFaultsField:
    def _spec(self, **overrides):
        base = dict(
            name="chaos",
            workload="mlp",
            scale="tiny",
            cluster=ClusterConfig(num_workers=2, gpus_per_worker=1),
            paradigm="bsp",
            paradigm_kwargs={},
            epochs=1.0,
            batch_size=16,
            seed=0,
        )
        base.update(overrides)
        return ExperimentSpec(**base)

    def test_validated_at_construction(self):
        with pytest.raises(ValueError, match="meteor"):
            self._spec(net_faults=({"spec": "meteor:5"},))
        with pytest.raises(ValueError, match="out of range"):
            self._spec(net_faults=({"spec": "drop", "worker": 7},))
        with pytest.raises(ValueError, match="duplicate"):
            self._spec(
                net_faults=({"spec": "delay:5"}, {"spec": "delay:10"})
            )

    def test_round_trips_through_dict(self):
        spec = self._spec(
            net_faults=(
                {"spec": "delay:5"},
                {"spec": "drop:0.5,2", "worker": 1},
            )
        )
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.net_faults == (
            {"spec": "delay:5"},
            {"spec": "drop:0.5,2", "worker": 1},
        )

    def test_default_is_empty_tuple(self):
        assert self._spec().net_faults == ()
