"""API surface of the topology and comm-pattern spec fields.

Construction-time validation, JSON round-trips, wall-clock backend
rejection, the simulated backend's percentile reporting, ring-allreduce
accounting, and the CLI overrides.
"""

import json

import pytest

from repro.api.backends import run_experiment
from repro.api.cli import main
from repro.api.spec import ClusterConfig, ExperimentSpec

RING_DEFAULTS = dict(
    name="ring",
    workload="mlp",
    scale="tiny",
    cluster=ClusterConfig(num_workers=2, gpus_per_worker=1),
    paradigm="bsp",
    paradigm_kwargs={},
    epochs=0.5,
    evaluate_every_updates=0,
    seed=0,
)


def tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="topo-api",
        workload="mlp",
        scale="tiny",
        cluster=ClusterConfig(num_workers=2, gpus_per_worker=1, topology="flat"),
        paradigm="bsp",
        paradigm_kwargs={},
        epochs=0.5,
        evaluate_every_updates=0,
        seed=0,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpecValidation:
    def test_unknown_preset_rejected_at_construction(self):
        with pytest.raises(ValueError, match="preset"):
            ClusterConfig(num_workers=2, topology="warehouse-scale")

    def test_malformed_inline_topology_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ClusterConfig(num_workers=2, topology={"kind": "mesh"})

    def test_unknown_comm_pattern_rejected(self):
        with pytest.raises(ValueError, match="comm_pattern"):
            tiny_spec(comm_pattern="tree")

    def test_ring_requires_bsp(self):
        with pytest.raises(ValueError, match="synchronous"):
            ExperimentSpec(
                **{**RING_DEFAULTS, "paradigm": "asp"}, comm_pattern="ring_allreduce"
            )

    def test_ring_requires_two_workers(self):
        with pytest.raises(ValueError, match="2 workers"):
            ExperimentSpec(
                **{
                    **RING_DEFAULTS,
                    "cluster": ClusterConfig(num_workers=1, gpus_per_worker=1),
                },
                comm_pattern="ring_allreduce",
            )

    def test_ring_rejects_compression(self):
        with pytest.raises(ValueError, match="compression"):
            ExperimentSpec(
                **RING_DEFAULTS, comm_pattern="ring_allreduce", compression="topk:0.1"
            )

    def test_topology_rejects_sharding(self):
        with pytest.raises(ValueError, match="num_shards"):
            tiny_spec(num_shards=2)

    def test_round_trips_through_json(self):
        spec = tiny_spec(comm_pattern="ring_allreduce")
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone.cluster.topology == "flat"
        assert clone.comm_pattern == "ring_allreduce"
        assert clone.to_dict() == spec.to_dict()

    def test_inline_topology_round_trips(self):
        inline = {
            "kind": "racks",
            "num_racks": 2,
            "leaf": {"latency": 1e-4, "bandwidth": 1e9},
            "uplink": {"latency": 1e-3, "bandwidth": 1e8, "jitter": "pareto:2.0"},
        }
        spec = tiny_spec(cluster=ClusterConfig(num_workers=4, topology=inline))
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone.cluster.topology == inline

    def test_replace_overrides_topology(self):
        spec = tiny_spec()
        flat = spec.replace(cluster=spec.cluster.replace(topology=None))
        assert flat.cluster.topology is None
        assert spec.cluster.topology == "flat"


class TestBackendBehaviour:
    @pytest.mark.parametrize("backend", ["threaded", "process"])
    def test_wall_clock_backends_reject_topology(self, backend):
        with pytest.raises(ValueError, match="topology"):
            run_experiment(tiny_spec(), backend)

    @pytest.mark.parametrize("backend", ["threaded", "process"])
    def test_wall_clock_backends_reject_ring(self, backend):
        spec = ExperimentSpec(**RING_DEFAULTS, comm_pattern="ring_allreduce")
        with pytest.raises(ValueError, match="comm_pattern"):
            run_experiment(spec, backend)

    def test_simulated_reports_percentiles(self):
        result = run_experiment(tiny_spec(), "simulated")
        summary = result.iteration_time_percentiles
        assert summary.count > 0
        assert summary.p99 >= summary.p90 >= summary.p50 > 0.0
        payload = result.to_dict()
        assert set(payload["iteration_time_percentiles"]) == {
            "count", "p50", "p90", "p99", "mean", "max",
        }

    def test_wall_clock_percentiles_schema_stable(self):
        spec = ExperimentSpec(
            name="flat-threaded",
            workload="mlp",
            scale="tiny",
            cluster=ClusterConfig(num_workers=2, gpus_per_worker=1),
            paradigm="bsp",
            paradigm_kwargs={},
            epochs=0.5,
            evaluate_every_updates=0,
            seed=0,
        )
        result = run_experiment(spec, "threaded")
        payload = result.to_dict()["iteration_time_percentiles"]
        assert payload["count"] == 0
        assert payload["p99"] == 0.0

    def test_ring_wire_accounting(self):
        spec = ExperimentSpec(**RING_DEFAULTS, comm_pattern="ring_allreduce")
        result = run_experiment(spec, "simulated")
        assert not result.errors
        reports = {r.worker_id: r for r in result.worker_reports}
        for report in reports.values():
            if report.iterations == 0:
                continue
            # 2*(n-1)/n of the dense payload per round, and no server pull.
            per_round = report.pushed_wire_bytes / report.iterations
            dense = report.pushed_raw_bytes / report.iterations
            assert per_round == pytest.approx(dense, rel=1e-6)  # n=2: 1x payload
            assert report.pulled_bytes == 0

    def test_ring_deterministic_and_converges_like_ps(self):
        ps = run_experiment(ExperimentSpec(**RING_DEFAULTS), "simulated")
        ring_spec = ExperimentSpec(**RING_DEFAULTS, comm_pattern="ring_allreduce")
        ring = run_experiment(ring_spec, "simulated")
        again = run_experiment(ring_spec, "simulated")
        # The ring reuses the PS apply path numerically, so the update
        # budget matches and the trajectory replays exactly; only the
        # round timing (and with it the within-round push arrival order)
        # differs from the PS pattern, so the curves are close, not equal.
        assert ring.total_updates == ps.total_updates
        assert ring.accuracies.tolist() == again.accuracies.tolist()
        assert ring.total_time == again.total_time
        assert abs(ring.final_accuracy - ps.final_accuracy) < 0.1


class TestCliOverrides:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        spec = ExperimentSpec(
            name="cli-topo",
            workload="mlp",
            scale="tiny",
            cluster=ClusterConfig(num_workers=2, gpus_per_worker=1),
            paradigm="bsp",
            paradigm_kwargs={},
            epochs=0.5,
            evaluate_every_updates=0,
            seed=0,
        )
        return spec.save(tmp_path / "spec.json")

    def test_topology_flag_threads_through(self, spec_path, tmp_path, capsys):
        output = tmp_path / "result.json"
        code = main(
            ["run", str(spec_path), "--backend", "simulated",
             "--topology", "two-rack", "--output", str(output)]
        )
        assert code == 0
        assert "iteration times" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert payload["provenance"]["spec"]["cluster"]["topology"] == "two-rack"
        assert payload["iteration_time_percentiles"]["count"] > 0

    def test_comm_pattern_flag_threads_through(self, spec_path, tmp_path):
        output = tmp_path / "result.json"
        code = main(
            ["run", str(spec_path), "--backend", "simulated",
             "--comm-pattern", "ring_allreduce", "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["provenance"]["spec"]["comm_pattern"] == "ring_allreduce"

    def test_unknown_topology_flag_fails_cleanly(self, spec_path, capsys):
        code = main(
            ["run", str(spec_path), "--backend", "simulated",
             "--topology", "warehouse"]
        )
        assert code != 0

    def test_registry_lists_topologies(self, capsys):
        code = main(["registry"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "two-rack" in printed
        assert "ring_allreduce" in printed
