"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.data.synthetic import SyntheticImageConfig, make_synthetic_image_dataset


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_image_datasets() -> tuple[ArrayDataset, ArrayDataset]:
    """A very small image-classification problem (fast to train on)."""
    config = SyntheticImageConfig(
        num_classes=4, num_train=160, num_test=64, image_size=8, noise_scale=0.4, seed=7
    )
    return make_synthetic_image_dataset(config)


@pytest.fixture
def tiny_flat_datasets(tiny_image_datasets) -> tuple[ArrayDataset, ArrayDataset]:
    """The same problem with flattened inputs (for MLP models)."""
    train, test = tiny_image_datasets
    return (
        ArrayDataset(train.inputs.reshape(len(train), -1), train.labels),
        ArrayDataset(test.inputs.reshape(len(test), -1), test.labels),
    )
