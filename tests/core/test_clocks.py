"""Tests for the worker clock table."""

import pytest

from repro.core.clocks import ClockTable


@pytest.fixture
def table() -> ClockTable:
    table = ClockTable()
    for worker in ("a", "b", "c"):
        table.register_worker(worker)
    return table


class TestRegistration:
    def test_workers_start_at_clock_zero(self, table):
        assert table.clocks() == {"a": 0, "b": 0, "c": 0}

    def test_duplicate_registration_rejected(self, table):
        with pytest.raises(ValueError):
            table.register_worker("a")

    def test_unknown_worker_rejected(self, table):
        with pytest.raises(KeyError):
            table.clock("unknown")

    def test_worker_ids_preserved_in_order(self, table):
        assert table.worker_ids == ["a", "b", "c"]
        assert table.num_workers == 3


class TestRecording:
    def test_push_increments_clock(self, table):
        assert table.record_push("a", 1.0) == 1
        assert table.record_push("a", 2.0) == 2
        assert table.clock("a") == 2
        assert table.clock("b") == 0

    def test_push_timestamps_must_not_go_backwards(self, table):
        table.record_push("a", 5.0)
        with pytest.raises(ValueError):
            table.record_push("a", 4.0)

    def test_equal_timestamps_allowed(self, table):
        table.record_push("a", 5.0)
        assert table.record_push("a", 5.0) == 2

    def test_latest_interval_requires_two_pushes(self, table):
        assert table.latest_interval("a") is None
        table.record_push("a", 1.0)
        assert table.latest_interval("a") is None
        table.record_push("a", 3.5)
        assert table.latest_interval("a") == pytest.approx(2.5)

    def test_wait_time_accumulates(self, table):
        table.record_wait("a", 1.0)
        table.record_wait("a", 0.5)
        assert table.total_wait_time("a") == pytest.approx(1.5)

    def test_negative_wait_rejected(self, table):
        with pytest.raises(ValueError):
            table.record_wait("a", -0.1)


class TestQueries:
    def test_slowest_and_fastest(self, table):
        table.record_push("a", 1.0)
        table.record_push("a", 2.0)
        table.record_push("b", 1.5)
        assert table.fastest_worker() == "a"
        assert table.slowest_worker() == "c"
        assert table.fastest_clock() == 2
        assert table.slowest_clock() == 0

    def test_staleness_is_lead_over_slowest(self, table):
        for _ in range(3):
            table.record_push("a", 1.0)
        table.record_push("b", 1.0)
        assert table.staleness("a") == 3
        assert table.staleness("b") == 1
        assert table.staleness("c") == 0

    def test_is_fastest_handles_ties(self, table):
        table.record_push("a", 1.0)
        table.record_push("b", 1.0)
        assert table.is_fastest("a")
        assert table.is_fastest("b")
        assert not table.is_fastest("c")

    def test_empty_table_queries(self):
        empty = ClockTable()
        assert empty.slowest_clock() == 0
        assert empty.fastest_clock() == 0
        with pytest.raises(RuntimeError):
            empty.slowest_worker()

    def test_history_kept_when_requested(self):
        table = ClockTable(keep_history=True)
        table.register_worker("a")
        table.record_push("a", 1.0)
        table.record_push("a", 2.0)
        assert table.record("a").push_history == [1.0, 2.0]


class TestElasticMembership:
    def test_late_joiner_starts_at_given_clock(self, table):
        table.register_worker("d", initial_clock=5)
        assert table.clocks()["d"] == 5
        assert table.slowest_clock() == 0  # existing members unaffected

    def test_negative_initial_clock_rejected(self, table):
        with pytest.raises(ValueError, match="initial_clock"):
            table.register_worker("d", initial_clock=-1)

    def test_deregistering_the_straggler_raises_slowest_clock(self, table):
        for _ in range(3):
            table.record_push("a", 1.0)
        for _ in range(2):
            table.record_push("c", 1.0)
        table.record_push("b", 1.0)
        assert table.slowest_clock() == 1
        table.deregister_worker("b")
        assert table.slowest_clock() == 2
        assert sorted(table.clocks()) == ["a", "c"]

    def test_deregister_unknown_worker_rejected(self, table):
        with pytest.raises(KeyError):
            table.deregister_worker("ghost")

    def test_deregistered_id_may_register_again(self, table):
        # The restart path: a reconnecting worker re-registers at its
        # checkpointed clock.
        table.deregister_worker("a")
        table.register_worker("a", initial_clock=7)
        assert table.clocks()["a"] == 7
