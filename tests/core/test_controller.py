"""Tests for the synchronization controller (paper Algorithm 2)."""

import numpy as np
import pytest

from repro.core.clocks import ClockTable
from repro.core.controller import SynchronizationController


def table_with_intervals(fast_interval: float, slow_interval: float) -> ClockTable:
    """Clock table where worker 'fast' and 'slow' each pushed twice."""
    table = ClockTable()
    table.register_worker("fast")
    table.register_worker("slow")
    table.record_push("fast", 0.0)
    table.record_push("slow", 0.0)
    table.record_push("fast", fast_interval)
    table.record_push("slow", slow_interval)
    # Make 'fast' the fastest in clock terms as well.
    table.record_push("fast", 2 * fast_interval)
    return table


class TestConstruction:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SynchronizationController(max_extra_iterations=-1)

    def test_zero_budget_always_returns_zero(self):
        controller = SynchronizationController(max_extra_iterations=0)
        table = table_with_intervals(1.0, 2.6)
        assert controller.decide(table, "fast").extra_iterations == 0


class TestFallback:
    def test_missing_history_falls_back_to_zero(self):
        controller = SynchronizationController(max_extra_iterations=5)
        table = ClockTable()
        table.register_worker("fast")
        table.register_worker("slow")
        table.record_push("fast", 0.0)
        decision = controller.decide(table, "fast")
        assert decision.fallback
        assert decision.extra_iterations == 0


class TestPrediction:
    def test_paper_figure2_example(self):
        """With a 2.6x slower worker and r_max=4 the optimum is r*=3 (Fig. 2)."""
        controller = SynchronizationController(max_extra_iterations=4)
        waits = controller.predicted_waits(
            fast_latest=0.0, fast_interval=1.0, slow_latest=0.0, slow_interval=2.6
        )
        assert int(np.argmin(np.round(waits, 9))) == 3

    def test_decision_matches_predicted_waits(self):
        controller = SynchronizationController(max_extra_iterations=6)
        table = table_with_intervals(1.0, 2.6)
        decision = controller.decide(table, "fast")
        waits = controller.predicted_waits(
            fast_latest=2.0, fast_interval=1.0, slow_latest=2.6, slow_interval=2.6
        )
        assert decision.extra_iterations == int(np.argmin(np.round(waits, 9)))
        assert decision.predicted_wait == pytest.approx(waits[decision.extra_iterations])

    def test_equal_speeds_prefer_zero_extra_iterations(self):
        """When both workers run at the same pace, waiting now is optimal."""
        controller = SynchronizationController(max_extra_iterations=8)
        table = table_with_intervals(2.0, 2.0)
        decision = controller.decide(table, "fast")
        assert decision.extra_iterations == 0

    def test_chosen_wait_never_worse_than_stopping_now(self):
        controller = SynchronizationController(max_extra_iterations=10)
        rng = np.random.default_rng(3)
        for _ in range(50):
            fast = float(rng.uniform(0.1, 2.0))
            slow = float(rng.uniform(0.1, 5.0))
            waits = controller.predicted_waits(
                fast_latest=0.0, fast_interval=fast, slow_latest=0.0, slow_interval=slow
            )
            assert waits.min() <= waits[0] + 1e-12

    def test_decisions_are_recorded(self):
        controller = SynchronizationController(max_extra_iterations=4)
        table = table_with_intervals(1.0, 3.0)
        controller.decide(table, "fast")
        controller.decide(table, "fast")
        assert len(controller.decisions) == 2

    def test_predicted_waits_requires_positive_intervals(self):
        controller = SynchronizationController(max_extra_iterations=4)
        with pytest.raises(ValueError):
            controller.predicted_waits(0.0, 0.0, 0.0, 1.0)
