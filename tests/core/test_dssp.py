"""Tests for the DSSP policy (paper Algorithm 1)."""

import pytest

from repro.core.dssp import DynamicStaleSynchronousParallel


def make_dssp(s_lower=1, s_upper=4, num_workers=2, **kwargs):
    policy = DynamicStaleSynchronousParallel(s_lower=s_lower, s_upper=s_upper, **kwargs)
    for index in range(num_workers):
        policy.register_worker(f"w{index}")
    return policy


class TestConstruction:
    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            DynamicStaleSynchronousParallel(s_lower=-1, s_upper=3)
        with pytest.raises(ValueError):
            DynamicStaleSynchronousParallel(s_lower=5, s_upper=3)

    def test_r_max_is_range_width(self):
        policy = DynamicStaleSynchronousParallel(s_lower=3, s_upper=15)
        assert policy.r_max == 12
        assert policy.controller.max_extra_iterations == 12

    def test_degenerate_range_equals_ssp_behaviour(self):
        policy = make_dssp(s_lower=2, s_upper=2)
        outcomes = [policy.on_push("w0", float(index)) for index in range(5)]
        # Identical to SSP with s=2: leads of 1 and 2 are fine, lead 3 blocks.
        assert [outcome.release for outcome in outcomes[:3]] == [True, True, False]


class TestLowerThresholdRule:
    def test_releases_within_lower_threshold(self):
        policy = make_dssp(s_lower=2, s_upper=6)
        assert policy.on_push("w0", 0.0).release
        assert policy.on_push("w0", 1.0).release

    def test_blocks_without_timing_history(self):
        # Before both workers have pushed twice the controller cannot predict
        # and must fall back to r* = 0, so the pushing worker blocks.
        policy = make_dssp(s_lower=1, s_upper=5)
        policy.on_push("w0", 0.0)
        outcome = policy.on_push("w0", 1.0)
        assert outcome.blocked
        assert outcome.controller_extra_iterations == 0


class TestExtraIterationCredits:
    def _warm_up(self, policy):
        """Give both workers two pushes so the controller has intervals.

        Leaves w0 (fast, interval 1.0) and w1 (slow, interval 2.6) at clock 2
        each; the next two w0 pushes bring its lead to 1 (released by the
        s_lower rule) and then 2 (which triggers the controller).
        """
        policy.on_push("w0", 0.0)
        policy.on_push("w1", 0.5)
        policy.on_push("w0", 1.0)
        policy.on_push("w1", 3.1)  # slow worker: interval 2.6
        policy.on_push("w0", 2.0)  # lead 1: released by the s_lower rule

    def test_controller_grants_extra_iterations_to_fastest(self):
        policy = make_dssp(s_lower=1, s_upper=9)
        self._warm_up(policy)
        # w0 pushes again, reaching lead 2 > s_lower: controller is consulted.
        outcome = policy.on_push("w0", 3.0)
        assert outcome.release
        assert outcome.used_extra_credit
        assert outcome.controller_extra_iterations is not None
        assert outcome.controller_extra_iterations >= 1
        # One credit was consumed by this release.
        assert policy.credit("w0") == outcome.controller_extra_iterations - 1

    def test_credits_consumed_on_subsequent_pushes(self):
        policy = make_dssp(s_lower=1, s_upper=9)
        self._warm_up(policy)
        first = policy.on_push("w0", 3.0)
        granted = first.controller_extra_iterations
        assert granted >= 1
        for step in range(granted - 1):
            outcome = policy.on_push("w0", 4.0 + step)
            assert outcome.release
            assert outcome.used_extra_credit
        assert policy.credit("w0") == 0

    def test_non_fastest_worker_blocks_without_controller(self):
        policy = make_dssp(s_lower=0, s_upper=5, num_workers=3)
        # Give every worker two pushes; w2 stays behind afterwards.
        for worker, time in (("w0", 0.0), ("w1", 0.3), ("w2", 0.6)):
            policy.on_push(worker, time)
        for worker, time in (("w0", 1.0), ("w1", 1.3), ("w2", 1.6)):
            policy.on_push(worker, time)
        # w0 runs ahead (clock 4); w1 then pushes with lead 1 over w2 but is
        # not the fastest, so it blocks without consulting the controller.
        policy.on_push("w0", 2.0)
        policy.on_push("w0", 3.0)
        outcome = policy.on_push("w1", 2.3)
        assert outcome.blocked
        assert outcome.controller_extra_iterations is None

    def test_effective_threshold_varies_per_worker(self):
        policy = make_dssp(s_lower=1, s_upper=9)
        self._warm_up(policy)
        policy.on_push("w0", 3.0)
        assert policy.effective_threshold_of("w0") >= policy.s_lower
        assert policy.effective_threshold_of("w1") == policy.s_lower


class TestUpperBoundEnforcement:
    def _drive_fast_worker(self, policy, iterations=30):
        """w0 pushes often, w1 rarely; returns the maximum observed lead."""
        policy.on_push("w0", 0.0)
        policy.on_push("w1", 0.5)
        policy.on_push("w0", 1.0)
        policy.on_push("w1", 3.1)
        max_lead = 0
        time = 2.0
        blocked = False
        slow_clock = 2
        for step in range(iterations):
            if not blocked:
                outcome = policy.on_push("w0", time)
                blocked = outcome.blocked
                lead = policy.clock_table.clock("w0") - policy.clock_table.clock("w1")
                max_lead = max(max_lead, lead)
                time += 1.0
            else:
                slow_clock += 1
                policy.on_push("w1", time + 2.6)
                time += 2.6
                if "w0" in policy.pop_releasable():
                    blocked = False
        return max_lead

    def test_literal_algorithm_can_exceed_upper_bound(self):
        policy = make_dssp(s_lower=1, s_upper=3, enforce_upper_bound=False)
        assert self._drive_fast_worker(policy) > 3

    def test_strict_variant_respects_upper_bound(self):
        policy = make_dssp(s_lower=1, s_upper=3, enforce_upper_bound=True)
        assert self._drive_fast_worker(policy) <= 3

    def test_blocked_worker_waits_for_lower_threshold(self):
        policy = make_dssp(s_lower=1, s_upper=2, enforce_upper_bound=True)
        policy.on_push("w0", 0.0)
        policy.on_push("w1", 0.5)
        policy.on_push("w0", 1.0)
        policy.on_push("w1", 3.1)
        policy.on_push("w0", 2.0)
        policy.on_push("w0", 3.0)
        outcome = policy.on_push("w0", 4.0)
        if outcome.blocked:
            # One slow push is not enough to bring the lead back to s_lower.
            policy.on_push("w1", 5.7)
            released_after_one = policy.pop_releasable()
            policy.on_push("w1", 8.3)
            released_after_two = policy.pop_releasable()
            assert "w0" in released_after_one + released_after_two


class TestStatistics:
    def test_controller_invocations_counted(self):
        policy = make_dssp(s_lower=1, s_upper=9)
        policy.on_push("w0", 0.0)
        policy.on_push("w1", 0.5)
        policy.on_push("w0", 1.0)
        policy.on_push("w1", 3.1)
        policy.on_push("w0", 2.0)
        policy.on_push("w0", 3.0)
        stats = policy.statistics()
        assert stats["paradigm"] == "dssp"
        assert stats["controller_invocations"] >= 1
        assert len(policy.controller_decisions()) >= 1
