"""Tests for the policy factory and the staleness tracker."""

import pytest

from repro.core.asp import AsynchronousParallel
from repro.core.bsp import BulkSynchronousParallel
from repro.core.dssp import DynamicStaleSynchronousParallel
from repro.core.factory import available_policies, make_policy
from repro.core.ssp import StaleSynchronousParallel
from repro.core.staleness import StalenessSummary, StalenessTracker


class TestFactory:
    def test_available_policies(self):
        assert available_policies() == ["bsp", "asp", "ssp", "dssp"]

    def test_makes_each_paradigm(self):
        assert isinstance(make_policy("bsp"), BulkSynchronousParallel)
        assert isinstance(make_policy("asp"), AsynchronousParallel)
        assert isinstance(make_policy("ssp", staleness=3), StaleSynchronousParallel)
        assert isinstance(
            make_policy("dssp", s_lower=3, s_upper=15), DynamicStaleSynchronousParallel
        )

    def test_name_is_case_insensitive(self):
        assert isinstance(make_policy("  BSP "), BulkSynchronousParallel)

    def test_ssp_requires_staleness(self):
        with pytest.raises(ValueError):
            make_policy("ssp")

    def test_dssp_requires_range(self):
        with pytest.raises(ValueError):
            make_policy("dssp", s_lower=3)

    def test_dssp_passes_bound_flag(self):
        policy = make_policy("dssp", s_lower=1, s_upper=4, enforce_upper_bound=True)
        assert policy.enforce_upper_bound is True

    def test_unknown_paradigm_rejected(self):
        with pytest.raises(ValueError):
            make_policy("gossip")

    def test_unknown_parameters_rejected(self):
        with pytest.raises(TypeError):
            make_policy("bsp", staleness=3)
        with pytest.raises(TypeError):
            make_policy("ssp", staleness=3, bogus=1)


class TestStalenessTracker:
    def test_empty_summary(self):
        tracker = StalenessTracker()
        summary = tracker.summary()
        assert summary == StalenessSummary.empty()
        assert summary.count == 0

    def test_summary_statistics(self):
        tracker = StalenessTracker()
        for value in (0, 1, 2, 3, 10):
            tracker.record("w0", value)
        summary = tracker.summary()
        assert summary.count == 5
        assert summary.maximum == 10
        assert summary.mean == pytest.approx(3.2)
        assert summary.p50 == pytest.approx(2.0)

    def test_per_worker_summary(self):
        tracker = StalenessTracker()
        tracker.record("a", 1)
        tracker.record("b", 5)
        assert tracker.worker_summary("a").maximum == 1
        assert tracker.worker_summary("b").maximum == 5
        assert tracker.worker_summary("missing").count == 0

    def test_negative_staleness_rejected(self):
        tracker = StalenessTracker()
        with pytest.raises(ValueError):
            tracker.record("a", -1)

    def test_observations_preserved_in_order(self):
        tracker = StalenessTracker()
        tracker.record("a", 2)
        tracker.record("a", 0)
        assert tracker.observations == [2, 0]
