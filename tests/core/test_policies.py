"""Tests for the BSP, ASP and SSP synchronization policies."""

import pytest

from repro.core.asp import AsynchronousParallel
from repro.core.bsp import BulkSynchronousParallel
from repro.core.ssp import StaleSynchronousParallel


def make_policy(policy_cls, num_workers=3, **kwargs):
    policy = policy_cls(**kwargs)
    for index in range(num_workers):
        policy.register_worker(f"w{index}")
    return policy


class TestBsp:
    def test_first_worker_to_finish_round_blocks(self):
        policy = make_policy(BulkSynchronousParallel)
        assert policy.on_push("w0", 1.0).blocked
        assert policy.on_push("w1", 1.1).blocked

    def test_last_worker_of_round_releases_everyone(self):
        policy = make_policy(BulkSynchronousParallel)
        policy.on_push("w0", 1.0)
        policy.on_push("w1", 1.1)
        outcome = policy.on_push("w2", 1.2)
        assert outcome.release
        assert set(policy.pop_releasable()) == {"w0", "w1"}

    def test_lockstep_over_multiple_rounds(self):
        policy = make_policy(BulkSynchronousParallel, num_workers=2)
        for round_index in range(5):
            first = policy.on_push("w0", float(round_index))
            second = policy.on_push("w1", float(round_index) + 0.5)
            assert first.blocked
            assert second.release
            assert policy.pop_releasable() == ["w0"]

    def test_staleness_never_exceeds_one(self):
        policy = make_policy(BulkSynchronousParallel, num_workers=2)
        max_staleness = 0
        for round_index in range(10):
            a = policy.on_push("w0", float(round_index))
            b = policy.on_push("w1", float(round_index) + 0.1)
            policy.pop_releasable()
            max_staleness = max(max_staleness, a.staleness, b.staleness)
        assert max_staleness <= 1


class TestAsp:
    def test_every_push_released_immediately(self):
        policy = make_policy(AsynchronousParallel)
        for index in range(20):
            outcome = policy.on_push("w0", float(index))
            assert outcome.release
        assert policy.pop_releasable() == []

    def test_staleness_unbounded(self):
        policy = make_policy(AsynchronousParallel, num_workers=2)
        last = None
        for index in range(15):
            last = policy.on_push("w0", float(index))
        assert last.staleness == 15

    def test_statistics_count_releases(self):
        policy = make_policy(AsynchronousParallel, num_workers=2)
        for index in range(4):
            policy.on_push("w0", float(index))
        stats = policy.statistics()
        assert stats["pushes"] == 4
        assert stats["blocks"] == 0


class TestSsp:
    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            StaleSynchronousParallel(staleness=-1)

    def test_zero_threshold_behaves_like_bsp(self):
        policy = make_policy(StaleSynchronousParallel, num_workers=2, staleness=0)
        assert policy.on_push("w0", 1.0).blocked
        assert policy.on_push("w1", 1.1).release
        assert policy.pop_releasable() == ["w0"]

    def test_worker_may_lead_by_threshold(self):
        policy = make_policy(StaleSynchronousParallel, num_workers=2, staleness=3)
        outcomes = [policy.on_push("w0", float(index)) for index in range(5)]
        # Leads of 1, 2, 3 are allowed; the push that creates lead 4 blocks.
        assert [outcome.release for outcome in outcomes] == [True, True, True, False, False]

    def test_blocked_worker_released_when_slowest_catches_up(self):
        policy = make_policy(StaleSynchronousParallel, num_workers=2, staleness=2)
        for index in range(3):
            policy.on_push("w0", float(index))
        assert policy.blocked_workers == ["w0"]
        policy.on_push("w1", 10.0)
        assert policy.pop_releasable() == ["w0"]
        assert policy.blocked_workers == []

    def test_lead_bound_holds_over_random_schedule(self):
        policy = make_policy(StaleSynchronousParallel, num_workers=3, staleness=2)
        import random

        rand = random.Random(0)
        blocked = set()
        time = 0.0
        for _ in range(200):
            candidates = [w for w in ("w0", "w1", "w2") if w not in blocked]
            if not candidates:
                break
            worker = rand.choice(candidates)
            time += 1.0
            outcome = policy.on_push(worker, time)
            if outcome.blocked:
                blocked.add(worker)
            for released in policy.pop_releasable():
                blocked.discard(released)
            clocks = policy.clock_table.clocks()
            # Released workers never exceed the bound by more than one
            # in-flight iteration.
            assert max(clocks.values()) - min(clocks.values()) <= 2 + 1

    def test_statistics_report_threshold_name(self):
        policy = make_policy(StaleSynchronousParallel, staleness=4)
        assert policy.statistics()["paradigm"] == "ssp"
        assert policy.effective_threshold() == 4


class TestElasticMembership:
    """Membership changes re-bound the policies (the tcp runtime's path)."""

    def test_ssp_dead_straggler_releases_blocked_fast_worker(self):
        policy = make_policy(StaleSynchronousParallel, num_workers=2, staleness=1)
        assert not policy.on_push("w0", 1.0).blocked  # lead 1 == threshold
        assert policy.on_push("w0", 2.0).blocked  # lead 2 over w1 at clock 0
        assert policy.pop_releasable() == []
        policy.deregister_worker("w1")
        # The straggler is gone: the bound is recomputed over the survivor.
        assert policy.pop_releasable() == ["w0"]

    def test_ssp_late_joiner_at_slowest_clock_is_not_a_straggler(self):
        policy = make_policy(StaleSynchronousParallel, num_workers=2, staleness=1)
        for _ in range(3):
            policy.on_push("w0", 1.0)
            policy.on_push("w1", 1.0)
        policy.register_worker("w9", initial_clock=policy.clock_table.slowest_clock())
        # Joining at the slowest clock, it neither blocks the cluster nor
        # blocks itself: its first push sits within the staleness bound.
        assert not policy.on_push("w9", 2.0).blocked
        assert not policy.on_push("w0", 2.0).blocked

    def test_bsp_dead_worker_shrinks_the_round(self):
        policy = make_policy(BulkSynchronousParallel, num_workers=3)
        assert policy.on_push("w0", 1.0).blocked
        assert policy.on_push("w1", 1.0).blocked
        policy.deregister_worker("w2")
        # The round barrier is now two-wide and both members have pushed.
        assert sorted(policy.pop_releasable()) == ["w0", "w1"]

    def test_dssp_deregister_forgets_credits(self):
        from repro.core.dssp import DynamicStaleSynchronousParallel

        policy = make_policy(
            DynamicStaleSynchronousParallel, num_workers=2, s_lower=1, s_upper=4
        )
        policy.on_push("w0", 1.0)
        policy.deregister_worker("w0")
        policy.register_worker("w0", initial_clock=policy.clock_table.slowest_clock())
        assert not policy.on_push("w0", 2.0).blocked
