"""Tests for the regret-bound helpers (paper Theorems 1 and 2)."""

import math

import numpy as np
import pytest

from repro.core.regret import (
    dssp_regret_bound,
    empirical_regret,
    regret_is_sublinear,
    ssp_regret_bound,
    suggested_step_size,
)


class TestBounds:
    def test_ssp_bound_formula(self):
        value = ssp_regret_bound(num_iterations=100, staleness=3, num_workers=4)
        assert value == pytest.approx(4 * math.sqrt(2 * 4 * 4 * 100))

    def test_dssp_bound_equals_ssp_at_upper_threshold(self):
        dssp = dssp_regret_bound(
            num_iterations=500, s_lower=3, max_extra_iterations=12, num_workers=4
        )
        ssp = ssp_regret_bound(num_iterations=500, staleness=15, num_workers=4)
        assert dssp == pytest.approx(ssp)

    def test_bound_grows_with_staleness_and_workers(self):
        base = ssp_regret_bound(1000, staleness=1, num_workers=2)
        assert ssp_regret_bound(1000, staleness=5, num_workers=2) > base
        assert ssp_regret_bound(1000, staleness=1, num_workers=8) > base

    def test_bound_is_sublinear_in_iterations(self):
        small = ssp_regret_bound(100, 3, 4) / 100
        large = ssp_regret_bound(10_000, 3, 4) / 10_000
        assert large < small

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            ssp_regret_bound(0, 1, 1)
        with pytest.raises(ValueError):
            ssp_regret_bound(10, -1, 1)
        with pytest.raises(ValueError):
            ssp_regret_bound(10, 1, 0)
        with pytest.raises(ValueError):
            dssp_regret_bound(10, 1, -1, 2)

    def test_step_size_decreases_with_iteration(self):
        first = suggested_step_size(1, staleness=3, num_workers=4)
        later = suggested_step_size(100, staleness=3, num_workers=4)
        assert later < first
        assert later == pytest.approx(first / 10.0)

    def test_step_size_requires_valid_iteration(self):
        with pytest.raises(ValueError):
            suggested_step_size(0, 1, 1)


class TestEmpiricalRegret:
    def test_cumulative_sum(self):
        regret = empirical_regret([1.0, 0.8, 0.6], optimal_loss=0.5)
        assert np.allclose(regret, [0.5, 0.8, 0.9])

    def test_empty_losses_rejected(self):
        with pytest.raises(ValueError):
            empirical_regret([], optimal_loss=0.0)

    def test_sublinear_detection_on_decaying_losses(self):
        steps = np.arange(1, 200)
        losses = 1.0 / np.sqrt(steps)
        regret = empirical_regret(losses, optimal_loss=0.0)
        assert regret_is_sublinear(regret)

    def test_linear_regret_not_sublinear(self):
        losses = np.ones(200)
        regret = empirical_regret(losses, optimal_loss=0.0)
        assert not regret_is_sublinear(regret)

    def test_sublinear_requires_enough_points(self):
        with pytest.raises(ValueError):
            regret_is_sublinear(np.arange(4))
