"""Tests for datasets, the synthetic generators and the CIFAR loader stub."""

import numpy as np
import pytest

from repro.data.cifar import load_cifar_if_available
from repro.data.dataset import ArrayDataset, train_test_split
from repro.data.synthetic import (
    SyntheticImageConfig,
    make_convex_regression_dataset,
    make_synthetic_image_dataset,
    synthetic_cifar10,
    synthetic_cifar100,
)


class TestArrayDataset:
    def test_length_and_indexing(self):
        dataset = ArrayDataset(np.arange(12).reshape(6, 2), np.arange(6))
        assert len(dataset) == 6
        inputs, label = dataset[2]
        assert np.allclose(inputs, [4, 5])
        assert label == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((0, 2)), np.zeros(0))

    def test_subset_copies_data(self):
        dataset = ArrayDataset(np.arange(6).reshape(3, 2).astype(float), np.arange(3))
        subset = dataset.subset(np.array([0, 2]))
        subset.inputs[0, 0] = 99.0
        assert dataset.inputs[0, 0] == 0.0
        assert len(subset) == 2

    def test_num_classes_and_sample_shape(self):
        dataset = ArrayDataset(np.zeros((4, 3, 8, 8)), np.array([0, 1, 2, 2]))
        assert dataset.num_classes == 3
        assert dataset.sample_shape == (3, 8, 8)

    def test_num_classes_requires_integer_labels(self):
        dataset = ArrayDataset(np.zeros((3, 2)), np.zeros(3))
        with pytest.raises(TypeError):
            _ = dataset.num_classes

    def test_train_test_split(self):
        dataset = ArrayDataset(np.arange(40).reshape(20, 2), np.arange(20))
        train, test = train_test_split(dataset, 0.25, np.random.default_rng(0))
        assert len(train) == 15
        assert len(test) == 5
        combined = np.sort(np.concatenate([train.labels, test.labels]))
        assert np.array_equal(combined, np.arange(20))

    def test_train_test_split_validates_fraction(self):
        dataset = ArrayDataset(np.zeros((4, 1)), np.arange(4))
        with pytest.raises(ValueError):
            train_test_split(dataset, 0.0, np.random.default_rng(0))


class TestSyntheticImages:
    def test_shapes_and_label_range(self):
        train, test = synthetic_cifar10(num_train=100, num_test=40, image_size=8)
        assert train.inputs.shape == (100, 3, 8, 8)
        assert test.inputs.shape == (40, 3, 8, 8)
        assert train.labels.min() >= 0
        assert train.labels.max() <= 9

    def test_cifar100_stand_in_has_requested_classes(self):
        train, _ = synthetic_cifar100(num_train=300, num_test=60, num_classes=20)
        assert train.labels.max() <= 19

    def test_generation_is_deterministic_per_seed(self):
        first, _ = synthetic_cifar10(num_train=50, num_test=10, seed=3)
        second, _ = synthetic_cifar10(num_train=50, num_test=10, seed=3)
        third, _ = synthetic_cifar10(num_train=50, num_test=10, seed=4)
        assert np.allclose(first.inputs, second.inputs)
        assert not np.allclose(first.inputs, third.inputs)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticImageConfig(num_train=5, num_classes=10)
        with pytest.raises(ValueError):
            SyntheticImageConfig(image_size=2)
        with pytest.raises(ValueError):
            SyntheticImageConfig(noise_scale=-1)

    def test_classes_are_separable_by_prototype_matching(self):
        """A nearest-prototype classifier should beat chance by a wide margin,
        otherwise the datasets would be pure noise and useless for the
        reproduction's convergence experiments."""
        config = SyntheticImageConfig(
            num_classes=4, num_train=400, num_test=100, image_size=8, noise_scale=0.5, seed=0
        )
        train, test = make_synthetic_image_dataset(config)
        prototypes = np.stack(
            [train.inputs[train.labels == c].mean(axis=0) for c in range(4)]
        )
        flat_test = test.inputs.reshape(len(test), -1)
        flat_protos = prototypes.reshape(4, -1)
        distances = ((flat_test[:, None, :] - flat_protos[None, :, :]) ** 2).sum(axis=2)
        accuracy = float(np.mean(distances.argmin(axis=1) == test.labels))
        assert accuracy > 0.6

    def test_convex_regression_dataset(self):
        dataset, true_weights = make_convex_regression_dataset(
            num_samples=200, num_features=10, noise_scale=0.01, seed=1
        )
        estimated, *_ = np.linalg.lstsq(dataset.inputs, dataset.labels, rcond=None)
        assert np.allclose(estimated, true_weights, atol=0.05)

    def test_convex_regression_validation(self):
        with pytest.raises(ValueError):
            make_convex_regression_dataset(num_samples=1)


class TestCifarLoader:
    def test_returns_none_when_files_absent(self, tmp_path):
        assert load_cifar_if_available("cifar10", data_root=tmp_path) is None
        assert load_cifar_if_available("cifar100", data_root=tmp_path) is None

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            load_cifar_if_available("mnist", data_root=tmp_path)

    def test_loads_cifar10_format_from_disk(self, tmp_path):
        import pickle

        root = tmp_path / "cifar-10-batches-py"
        root.mkdir()
        rng = np.random.default_rng(0)
        for index in range(1, 6):
            batch = {
                b"data": rng.integers(0, 255, size=(4, 3 * 32 * 32), dtype=np.uint8),
                b"labels": [0, 1, 2, 3],
            }
            with (root / f"data_batch_{index}").open("wb") as handle:
                pickle.dump(batch, handle)
        with (root / "test_batch").open("wb") as handle:
            pickle.dump(
                {
                    b"data": rng.integers(0, 255, size=(2, 3072), dtype=np.uint8),
                    b"labels": [5, 7],
                },
                handle,
            )
        loaded = load_cifar_if_available("cifar10", data_root=tmp_path)
        assert loaded is not None
        train, test = loaded
        assert train.inputs.shape == (20, 3, 32, 32)
        assert test.inputs.shape == (2, 3, 32, 32)
        assert train.inputs.max() <= 1.0
