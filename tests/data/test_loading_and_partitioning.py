"""Tests for mini-batch loading, partitioning and augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.augmentation import (
    AugmentationPipeline,
    add_gaussian_noise,
    random_channel_dropout,
    random_horizontal_flip,
    random_rotation,
)
from repro.data.dataset import ArrayDataset
from repro.data.loader import MiniBatchLoader
from repro.data.partitioner import partition_dataset, partition_indices


def make_dataset(count=20, feature_dim=3):
    return ArrayDataset(
        np.arange(count * feature_dim, dtype=float).reshape(count, feature_dim),
        np.arange(count) % 4,
    )


class TestPartitioner:
    def test_partitions_cover_all_indices_exactly_once(self):
        parts = partition_indices(20, 3)
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(20))

    def test_partition_sizes_differ_by_at_most_one(self):
        parts = partition_indices(23, 4)
        sizes = [len(part) for part in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_shuffled_partitions_are_random_but_complete(self):
        parts = partition_indices(30, 3, rng=np.random.default_rng(0))
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(30))
        assert not np.array_equal(parts[0], np.arange(10))

    def test_more_partitions_than_samples_rejected(self):
        with pytest.raises(ValueError):
            partition_indices(2, 3)
        with pytest.raises(ValueError):
            partition_indices(2, 0)

    def test_partition_dataset_returns_datasets(self):
        datasets = partition_dataset(make_dataset(20), 4)
        assert len(datasets) == 4
        assert sum(len(d) for d in datasets) == 20

    @settings(max_examples=25, deadline=None)
    @given(
        num_samples=st.integers(min_value=4, max_value=200),
        num_partitions=st.integers(min_value=1, max_value=4),
    )
    def test_partition_property(self, num_samples, num_partitions):
        if num_samples < num_partitions:
            return
        parts = partition_indices(num_samples, num_partitions, rng=np.random.default_rng(1))
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(num_samples))


class TestMiniBatchLoader:
    def test_epoch_covers_dataset_once(self):
        loader = MiniBatchLoader(make_dataset(10), batch_size=3, rng=np.random.default_rng(0))
        seen = sum(batch[0].shape[0] for batch in loader.epoch())
        assert seen == 10

    def test_drop_last_drops_partial_batch(self):
        loader = MiniBatchLoader(
            make_dataset(10), batch_size=3, rng=np.random.default_rng(0), drop_last=True
        )
        sizes = [batch[0].shape[0] for batch in loader.epoch()]
        assert sizes == [3, 3, 3]

    def test_next_batch_cycles_and_counts_epochs(self):
        loader = MiniBatchLoader(make_dataset(8), batch_size=4, rng=np.random.default_rng(0))
        for _ in range(5):
            inputs, labels = loader.next_batch()
            assert inputs.shape[0] == 4
            assert labels.shape[0] == 4
        assert loader.epochs_completed == 2

    def test_batches_per_epoch(self):
        loader = MiniBatchLoader(make_dataset(10), batch_size=4, rng=np.random.default_rng(0))
        assert loader.batches_per_epoch == 3

    def test_shuffle_changes_order_but_not_content(self):
        dataset = make_dataset(16)
        loader = MiniBatchLoader(dataset, batch_size=16, rng=np.random.default_rng(3))
        inputs, labels = loader.next_batch()
        assert not np.allclose(inputs, dataset.inputs)
        assert np.allclose(np.sort(inputs.ravel()), np.sort(dataset.inputs.ravel()))

    def test_without_shuffle_preserves_order(self):
        dataset = make_dataset(8)
        loader = MiniBatchLoader(
            dataset, batch_size=8, rng=np.random.default_rng(0), shuffle=False
        )
        inputs, _ = loader.next_batch()
        assert np.allclose(inputs, dataset.inputs)

    def test_augmentation_applied(self):
        dataset = make_dataset(8)
        loader = MiniBatchLoader(
            dataset,
            batch_size=8,
            rng=np.random.default_rng(0),
            shuffle=False,
            augmentation=lambda images, rng: images + 1.0,
        )
        inputs, _ = loader.next_batch()
        assert np.allclose(inputs, dataset.inputs + 1.0)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            MiniBatchLoader(make_dataset(4), batch_size=0, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            MiniBatchLoader(
                make_dataset(4), batch_size=8, rng=np.random.default_rng(0), drop_last=True
            )


class TestAugmentation:
    @pytest.fixture
    def images(self):
        return np.random.default_rng(0).normal(size=(6, 3, 8, 8))

    def test_horizontal_flip_preserves_content(self, images):
        flipped = random_horizontal_flip(images, np.random.default_rng(0), probability=1.0)
        assert np.allclose(flipped, images[:, :, :, ::-1])

    def test_flip_probability_zero_is_identity(self, images):
        assert np.allclose(
            random_horizontal_flip(images, np.random.default_rng(0), probability=0.0), images
        )

    def test_gaussian_noise_changes_values(self, images):
        noisy = add_gaussian_noise(images, np.random.default_rng(0), scale=0.1)
        assert not np.allclose(noisy, images)
        assert np.allclose(noisy, images, atol=1.0)

    def test_channel_dropout_zeroes_one_channel(self, images):
        dropped = random_channel_dropout(images, np.random.default_rng(0), probability=1.0)
        zero_channels = (np.abs(dropped).sum(axis=(2, 3)) == 0).sum(axis=1)
        assert np.all(zero_channels >= 1)

    def test_rotation_preserves_pixel_multiset(self, images):
        rotated = random_rotation(images, np.random.default_rng(0))
        assert np.allclose(np.sort(rotated.ravel()), np.sort(images.ravel()))

    def test_pipeline_composes(self, images):
        pipeline = AugmentationPipeline(
            [
                lambda batch, rng: batch + 1.0,
                lambda batch, rng: batch * 2.0,
            ]
        )
        assert np.allclose(pipeline(images, np.random.default_rng(0)), (images + 1.0) * 2.0)

    def test_invalid_probabilities_rejected(self, images):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_horizontal_flip(images, rng, probability=2.0)
        with pytest.raises(ValueError):
            add_gaussian_noise(images, rng, scale=-1.0)
        with pytest.raises(ValueError):
            random_channel_dropout(images, rng, probability=-0.5)
