"""Tests for the experiment harness (configs, workloads, runner, report)."""

import numpy as np
import pytest

from repro.experiments.config import DEFAULT, SMALL, TINY, ExperimentScale, paper_ssp_thresholds
from repro.experiments.report import format_comparison_summary, format_figure_result
from repro.experiments.runner import average_curves, run_paradigm_comparison
from repro.experiments.workloads import alexnet_workload, mlp_workload, resnet_workload
from repro.api.result import RunResult
from repro.simulation.cluster import homogeneous_cluster


class TestScales:
    def test_presets_are_ordered_by_size(self):
        assert TINY.num_train < SMALL.num_train < DEFAULT.num_train
        assert TINY.name == "tiny"

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentScale(
                name="bad",
                num_train=0,
                num_test=10,
                image_size=8,
                num_classes_cifar100=10,
                model_width=4,
                fc_width=8,
                resnet_depth_for_110=8,
                resnet_depth_for_50=8,
                epochs=1,
                batch_size=8,
                evaluate_every_updates=4,
            )

    def test_paper_ssp_thresholds(self):
        assert paper_ssp_thresholds(full=True) == list(range(3, 16))
        subset = paper_ssp_thresholds()
        assert set(subset) <= set(range(3, 16))
        assert 3 in subset and 15 in subset


class TestWorkloads:
    def test_alexnet_workload_structure(self):
        workload = alexnet_workload(TINY)
        assert workload.has_fully_connected_hidden
        assert workload.num_classes == 10
        assert workload.train_dataset.sample_shape == (3, TINY.image_size, TINY.image_size)
        model = workload.model_builder(np.random.default_rng(0))
        logits = model.forward(workload.train_dataset.inputs[:2])
        assert logits.shape == (2, 10)

    def test_resnet_workload_paper_depth_validation(self):
        with pytest.raises(ValueError):
            resnet_workload(TINY, paper_depth=34)

    def test_resnet_workloads_differ_in_timing_cost(self):
        shallow = resnet_workload(TINY, paper_depth=50)
        deep = resnet_workload(TINY, paper_depth=110)
        assert not shallow.has_fully_connected_hidden
        assert deep.timing_cost.flops_per_sample != shallow.timing_cost.flops_per_sample

    def test_alexnet_timing_cost_is_communication_heavier_than_resnet(self):
        """The paper-scale cost ratio that drives the Figure 3 trends."""
        alexnet = alexnet_workload(TINY)
        resnet = resnet_workload(TINY, paper_depth=110)
        alexnet_ratio = alexnet.timing_cost.parameter_bytes / alexnet.timing_cost.flops_per_sample
        resnet_ratio = resnet.timing_cost.parameter_bytes / resnet.timing_cost.flops_per_sample
        assert alexnet_ratio > resnet_ratio

    def test_mlp_workload_is_flat(self):
        workload = mlp_workload(TINY)
        assert len(workload.train_dataset.sample_shape) == 1


class TestRunner:
    @pytest.fixture(scope="class")
    def comparison(self):
        workload = mlp_workload(TINY)
        return run_paradigm_comparison(
            workload=workload,
            cluster=homogeneous_cluster(num_workers=2, gpus_per_worker=1),
            paradigms=[("bsp", {}), ("asp", {}), ("dssp", {"s_lower": 1, "s_upper": 4})],
            epochs=1.0,
            batch_size=16,
            evaluate_every_updates=8,
            seed=0,
            scale=TINY,
        )

    def test_labels_and_results(self, comparison):
        assert comparison.labels == ["BSP", "ASP", "DSSP s=1, r=3"]
        assert all(isinstance(r, RunResult) for r in comparison.results.values())
        assert all(r.backend == "simulated" for r in comparison.results.values())
        with pytest.raises(KeyError):
            comparison.result("SSP s=99")

    def test_provenance_records_spec_and_injection(self, comparison):
        provenance = comparison.result("BSP").provenance
        assert provenance.spec["paradigm"] == "bsp"
        assert provenance.spec["epochs"] == 1.0
        # The scale the workload was actually built at, canonicalized to
        # plain data.
        assert provenance.spec["scale"]["name"] == "tiny"
        assert provenance.spec["scale"]["num_train"] == TINY.num_train
        assert any(entry.startswith("workload:") for entry in provenance.injected)

    def test_derived_tables(self, comparison):
        assert set(comparison.best_accuracies()) == set(comparison.labels)
        assert all(value > 0 for value in comparison.final_times().values())
        assert all(value > 0 for value in comparison.throughputs().values())
        assert comparison.wait_times()["ASP"] == 0.0
        times = comparison.times_to_accuracy(2.0)
        assert all(value is None for value in times.values())

    def test_empty_paradigms_rejected(self):
        workload = mlp_workload(TINY)
        with pytest.raises(ValueError):
            run_paradigm_comparison(
                workload=workload,
                cluster=homogeneous_cluster(num_workers=1),
                paradigms=[],
                epochs=1.0,
                batch_size=16,
            )

    def test_labels_length_validated(self):
        workload = mlp_workload(TINY)
        with pytest.raises(ValueError):
            run_paradigm_comparison(
                workload=workload,
                cluster=homogeneous_cluster(num_workers=1),
                paradigms=[("bsp", {})],
                epochs=1.0,
                batch_size=16,
                labels=["a", "b"],
            )

    def test_format_comparison_summary(self, comparison):
        text = format_comparison_summary(comparison, targets=[0.5])
        assert "BSP" in text and "ASP" in text
        assert "best acc" in text

    def test_average_curves_interpolates_onto_common_grid(self, comparison):
        results = list(comparison.results.values())
        grid, mean_curve = average_curves(results, num_points=20)
        assert grid.shape == (20,) and mean_curve.shape == (20,)
        assert np.all(np.diff(grid) > 0)
        lows = min(result.accuracies.min() for result in results)
        highs = max(result.accuracies.max() for result in results)
        assert np.all((mean_curve >= lows - 1e-9) & (mean_curve <= highs + 1e-9))

    def test_average_curves_validation(self):
        with pytest.raises(ValueError):
            average_curves([])
