"""Tests for result export (CSV/JSON) and ASCII plotting."""

import numpy as np
import pytest

from repro.experiments.config import TINY
from repro.experiments.export import (
    export_comparison_json,
    export_figure_csv,
    load_comparison_json,
)
from repro.experiments.figures import figure2_waiting_time_prediction
from repro.experiments.runner import run_paradigm_comparison
from repro.experiments.workloads import mlp_workload
from repro.metrics.plotting import ascii_curves
from repro.simulation.cluster import homogeneous_cluster


@pytest.fixture(scope="module")
def comparison():
    workload = mlp_workload(TINY)
    return run_paradigm_comparison(
        workload=workload,
        cluster=homogeneous_cluster(num_workers=2, gpus_per_worker=1),
        paradigms=[("bsp", {}), ("dssp", {"s_lower": 1, "s_upper": 4})],
        epochs=1.0,
        batch_size=16,
        evaluate_every_updates=8,
        seed=0,
    )


class TestExport:
    def test_figure_csv_contains_all_series(self, tmp_path):
        figure = figure2_waiting_time_prediction(r_max=4)
        path = export_figure_csv(figure, tmp_path / "figure2.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "series,x,y"
        assert len(lines) == 1 + 5  # header + r = 0..4

    def test_comparison_json_round_trip(self, comparison, tmp_path):
        path = export_comparison_json(comparison, tmp_path / "runs.json", targets=[0.5])
        payload = load_comparison_json(path)
        assert payload["workload"] == comparison.workload_name
        assert set(payload["runs"]) == set(comparison.labels)
        bsp = payload["runs"]["BSP"]
        assert bsp["total_updates"] == comparison.result("BSP").total_updates
        assert len(bsp["times"]) == len(bsp["accuracies"])
        assert "0.500" in bsp["time_to_accuracy"]

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_comparison_json(tmp_path / "missing.json")


class TestAsciiCurves:
    def test_renders_all_labels_and_ranges(self):
        chart = ascii_curves(
            {
                "BSP": ([0, 1, 2, 3], [0.1, 0.2, 0.3, 0.4]),
                "DSSP": ([0, 1, 2], [0.1, 0.3, 0.5]),
            },
            width=40,
            height=10,
        )
        assert "BSP" in chart and "DSSP" in chart
        assert "0.100" in chart and "0.500" in chart
        # One line per grid row plus header, axis and legend lines.
        assert len(chart.splitlines()) == 10 + 4

    def test_markers_plotted_inside_grid(self):
        chart = ascii_curves({"only": ([0, 10], [0.0, 1.0])}, width=20, height=5)
        grid_lines = chart.splitlines()[1:6]
        assert any("O" in line for line in grid_lines)

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_curves({})
        with pytest.raises(ValueError):
            ascii_curves({"a": ([0], [1])}, width=4, height=2)

    def test_constant_curve_does_not_divide_by_zero(self):
        chart = ascii_curves({"flat": ([0, 1, 2], [0.5, 0.5, 0.5])})
        assert "flat" in chart


class TestFluctuatingEnvironmentAblation:
    def test_entries_and_adaptivity(self):
        from repro.experiments.ablations import fluctuating_environment_ablation

        entries = fluctuating_environment_ablation(scale=TINY, epochs=1.0, degradation_factor=3.0)
        labels = [entry.paradigm_label for entry in entries]
        assert labels == ["BSP", "ASP", "SSP s=3", "DSSP s=3, r=12"]
        by_label = {entry.paradigm_label: entry for entry in entries}
        # ASP never waits even when a worker degrades; BSP always pays the most.
        assert by_label["ASP"].total_wait_time == 0.0
        assert by_label["BSP"].total_wait_time >= by_label["DSSP s=3, r=12"].total_wait_time - 1e-9
        # The adaptive paradigm loses no more total time than the fixed ones.
        assert by_label["DSSP s=3, r=12"].total_time <= by_label["BSP"].total_time + 1e-9

    def test_invalid_degradation_rejected(self):
        from repro.experiments.ablations import fluctuating_environment_ablation

        with pytest.raises(ValueError):
            fluctuating_environment_ablation(scale=TINY, degradation_factor=0.5)


class TestSlowdownSchedule:
    def test_schedule_slows_targeted_worker(self, tiny_flat_datasets):
        from repro.models import mlp
        from repro.simulation.trainer import SimulationConfig, simulate_training

        train, test = tiny_flat_datasets
        input_dim = train.inputs.shape[1]

        def builder(rng):
            return mlp(input_dim=input_dim, hidden_dims=(8,), num_classes=4, rng=rng)

        def run(schedule):
            config = SimulationConfig(
                cluster=homogeneous_cluster(num_workers=2, gpus_per_worker=1),
                paradigm="asp",
                paradigm_kwargs={},
                epochs=1.0,
                batch_size=16,
                evaluate_every_updates=0,
                slowdown_schedule=schedule,
                seed=0,
            )
            return simulate_training(config, builder, train, test)

        baseline = run(None)
        slowed = run(lambda worker_id, now: 4.0 if worker_id == "worker-0" else 1.0)
        assert slowed.total_virtual_time > baseline.total_virtual_time
        assert (
            slowed.iterations_per_worker["worker-0"]
            < slowed.iterations_per_worker["worker-1"]
        )

    def test_non_positive_factor_rejected(self, tiny_flat_datasets):
        from repro.models import mlp
        from repro.simulation.trainer import SimulationConfig, simulate_training

        train, test = tiny_flat_datasets
        input_dim = train.inputs.shape[1]
        config = SimulationConfig(
            cluster=homogeneous_cluster(num_workers=2, gpus_per_worker=1),
            paradigm="asp",
            paradigm_kwargs={},
            epochs=1.0,
            batch_size=16,
            evaluate_every_updates=0,
            slowdown_schedule=lambda worker_id, now: 0.0,
            seed=0,
        )
        with pytest.raises(ValueError):
            simulate_training(
                config,
                lambda rng: mlp(input_dim=input_dim, hidden_dims=(8,), num_classes=4, rng=rng),
                train,
                test,
            )
