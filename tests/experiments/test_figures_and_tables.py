"""Smoke tests for the figure/table/ablation regeneration at tiny scale.

These verify the harness runs end to end and that the *robust* qualitative
properties hold; the benchmarks regenerate the full figures at larger scale.
"""

import numpy as np
import pytest

from repro.experiments.ablations import (
    dssp_range_ablation,
    regret_experiment,
    staleness_distribution_ablation,
    throughput_ablation,
)
from repro.experiments.config import TINY
from repro.experiments.figures import (
    figure2_waiting_time_prediction,
    figure3,
    figure4_heterogeneous,
)
from repro.experiments.report import format_figure_result
from repro.experiments.tables import format_table1, table1_time_to_accuracy


class TestFigure2:
    def test_paper_caption_example(self):
        figure = figure2_waiting_time_prediction(fast_interval=1.0, slow_interval=2.6, r_max=4)
        assert figure.metadata["r_star"] == 3
        waits = figure.series_by_label("predicted_wait")
        assert waits.y[3] == min(waits.y)

    def test_waiting_now_is_never_better_than_optimum(self):
        figure = figure2_waiting_time_prediction(fast_interval=0.7, slow_interval=3.0, r_max=8)
        waits = figure.series_by_label("predicted_wait").y
        assert waits[figure.metadata["r_star"]] <= waits[0]

    def test_equal_speeds_align_within_one_iteration(self):
        # With equal intervals the fast worker's next push lands exactly on
        # the slow worker's next push, so the optimum is r* = 1 with zero
        # predicted waiting (running one more iteration costs nothing).
        figure = figure2_waiting_time_prediction(fast_interval=2.0, slow_interval=2.0, r_max=6)
        waits = figure.series_by_label("predicted_wait").y
        assert figure.metadata["r_star"] <= 1
        assert waits[figure.metadata["r_star"]] == pytest.approx(0.0)

    def test_invalid_intervals_rejected(self):
        with pytest.raises(ValueError):
            figure2_waiting_time_prediction(fast_interval=0.0)

    def test_report_rendering(self):
        figure = figure2_waiting_time_prediction()
        text = format_figure_result(figure)
        assert "figure2" in text
        with pytest.raises(KeyError):
            figure.series_by_label("missing")


@pytest.mark.slow
class TestFigure3:
    @pytest.fixture(scope="class")
    def alexnet_figure(self):
        return figure3(model="alexnet", scale=TINY, ssp_thresholds=[3, 15], epochs=2.0)

    def test_contains_all_expected_series(self, alexnet_figure):
        labels = alexnet_figure.labels
        assert "BSP" in labels and "ASP" in labels
        assert "DSSP s=3, r=12" in labels
        assert "SSP s=3" in labels and "SSP s=15" in labels
        assert "Average SSP" in labels

    def test_bsp_waits_more_than_asynchronous_paradigms(self, alexnet_figure):
        comparison = alexnet_figure.comparison
        assert comparison.wait_times()["BSP"] > comparison.wait_times()["ASP"]
        assert comparison.wait_times()["ASP"] == 0.0

    def test_asp_throughput_at_least_bsp(self, alexnet_figure):
        throughputs = alexnet_figure.comparison.throughputs()
        assert throughputs["ASP"] >= throughputs["BSP"]

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            figure3(model="vgg", scale=TINY)


@pytest.mark.slow
class TestFigure4AndTable1:
    @pytest.fixture(scope="class")
    def figure4(self):
        return figure4_heterogeneous(scale=TINY, ssp_thresholds=[3, 15], epochs=2.0)

    def test_series_and_metadata(self, figure4):
        assert set(figure4.metadata["devices"]) == {"gtx1080ti", "gtx1060"}
        assert "DSSP s=3, r=12" in figure4.labels

    def test_dssp_finishes_no_later_than_ssp_and_bsp(self, figure4):
        times = figure4.comparison.final_times()
        assert times["DSSP s=3, r=12"] <= times["SSP s=3"] + 1e-9
        assert times["DSSP s=3, r=12"] <= times["BSP"] + 1e-9

    def test_table1_rows_and_formatting(self):
        table = table1_time_to_accuracy(scale=TINY, epochs=2.0)
        assert len(table.rows) == 6
        paradigms = [row.paradigm for row in table.rows]
        assert paradigms[0] == "BSP" and paradigms[-1].startswith("DSSP")
        text = format_table1(table)
        assert "Targets" in text and "DSSP" in text


@pytest.mark.slow
class TestAblations:
    def test_throughput_ablation_ratios(self):
        result = throughput_ablation(scale=TINY, epochs=1.0)
        # The compute-to-communication ratio must be much larger for the
        # conv-only ResNet than for the FC-bearing AlexNet (Section V-C).
        assert result.resnet_compute_to_comm > result.alexnet_compute_to_comm
        assert set(result.alexnet_throughput) == set(result.resnet_throughput)

    def test_dssp_range_ablation_entries(self):
        entries = dssp_range_ablation(ranges=[(3, 3), (3, 9)], scale=TINY, epochs=1.0)
        assert len(entries) == 2
        degenerate, wide = entries
        assert degenerate.s_upper == 3 and wide.s_upper == 9
        assert wide.total_wait_time <= degenerate.total_wait_time + 1e-9

    def test_staleness_distribution_ablation(self):
        summaries = staleness_distribution_ablation(scale=TINY, epochs=1.0)
        assert set(summaries) == {"BSP", "ASP", "SSP s=3", "DSSP s=3, r=12"}
        assert summaries["BSP"].maximum <= summaries["ASP"].maximum


class TestRegretExperiment:
    def test_dssp_regret_within_bound_and_sublinear(self):
        result = regret_experiment(paradigm="dssp", num_workers=2, num_train=256, steps=60)
        assert result.within_bound
        assert result.sublinear
        assert result.cumulative_regret.shape[0] >= 60

    def test_ssp_variant_runs(self):
        result = regret_experiment(
            paradigm="ssp", paradigm_kwargs={"staleness": 2}, num_workers=2,
            num_train=256, steps=40,
        )
        assert np.isfinite(result.theoretical_bound)
