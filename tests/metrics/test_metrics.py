"""Tests for accuracy, metric tracking, convergence and throughput helpers."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.metrics.accuracy import evaluate_model, top1_accuracy
from repro.metrics.convergence import (
    accuracy_at_time,
    area_under_accuracy_curve,
    time_to_accuracy,
)
from repro.metrics.throughput import iteration_throughput
from repro.metrics.tracker import ExperimentTracker, MetricSeries
from repro.models import mlp


class TestTop1Accuracy:
    def test_perfect_and_zero(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        assert top1_accuracy(logits, np.array([0, 1])) == 1.0
        assert top1_accuracy(logits, np.array([1, 0])) == 0.0

    def test_partial(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0], [3.0, 1.0], [1.0, 3.0]])
        assert top1_accuracy(logits, np.array([0, 1, 1, 1])) == pytest.approx(0.75)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros(3), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros((3, 2)), np.zeros(2, dtype=int))


class TestEvaluateModel:
    def test_returns_accuracy_and_loss(self):
        rng = np.random.default_rng(0)
        model = mlp(input_dim=6, hidden_dims=(8,), num_classes=3, rng=rng)
        dataset = ArrayDataset(rng.normal(size=(30, 6)), rng.integers(0, 3, size=30))
        accuracy, loss = evaluate_model(model, dataset, batch_size=8)
        assert 0.0 <= accuracy <= 1.0
        assert loss > 0.0

    def test_restores_training_mode(self):
        rng = np.random.default_rng(0)
        model = mlp(input_dim=4, hidden_dims=(), num_classes=2, rng=rng)
        dataset = ArrayDataset(rng.normal(size=(8, 4)), rng.integers(0, 2, size=8))
        model.train(True)
        evaluate_model(model, dataset)
        assert model.training
        model.eval()
        evaluate_model(model, dataset)
        assert not model.training

    def test_invalid_batch_size(self):
        rng = np.random.default_rng(0)
        model = mlp(input_dim=4, hidden_dims=(), num_classes=2, rng=rng)
        dataset = ArrayDataset(rng.normal(size=(8, 4)), rng.integers(0, 2, size=8))
        with pytest.raises(ValueError):
            evaluate_model(model, dataset, batch_size=0)


class TestMetricSeries:
    def test_record_and_query(self):
        series = MetricSeries("accuracy")
        series.record(0.0, 0.1)
        series.record(1.0, 0.5, step=10)
        assert len(series) == 2
        assert series.latest().value == 0.5
        assert series.best().value == 0.5
        assert series.best(mode="min").value == 0.1
        assert np.allclose(series.times, [0.0, 1.0])

    def test_time_must_not_go_backwards(self):
        series = MetricSeries("loss")
        series.record(1.0, 0.5)
        with pytest.raises(ValueError):
            series.record(0.5, 0.4)

    def test_best_mode_validation(self):
        series = MetricSeries("x")
        series.record(0.0, 1.0)
        with pytest.raises(ValueError):
            series.best(mode="median")

    def test_empty_series(self):
        series = MetricSeries("x")
        assert series.latest() is None
        assert series.best() is None


class TestExperimentTracker:
    def test_record_multiple_series(self):
        tracker = ExperimentTracker()
        tracker.record("accuracy", 0.0, 0.2)
        tracker.record("accuracy", 1.0, 0.4)
        tracker.record("loss", 0.0, 2.0)
        assert tracker.names() == ["accuracy", "loss"]
        assert len(tracker.series("accuracy")) == 2
        exported = tracker.as_dict()
        assert exported["loss"] == [(0.0, 2.0)]

    def test_unknown_series_is_empty(self):
        tracker = ExperimentTracker()
        assert len(tracker.series("nothing")) == 0


class TestConvergence:
    TIMES = [0.0, 10.0, 20.0, 30.0]
    ACCURACIES = [0.1, 0.4, 0.6, 0.65]

    def test_time_to_accuracy(self):
        assert time_to_accuracy(self.TIMES, self.ACCURACIES, 0.5) == 20.0
        assert time_to_accuracy(self.TIMES, self.ACCURACIES, 0.05) == 0.0
        assert time_to_accuracy(self.TIMES, self.ACCURACIES, 0.9) is None

    def test_accuracy_at_time(self):
        assert accuracy_at_time(self.TIMES, self.ACCURACIES, 15.0) == pytest.approx(0.4)
        assert accuracy_at_time(self.TIMES, self.ACCURACIES, -1.0) == 0.0

    def test_area_under_curve_prefers_faster_convergence(self):
        fast = [0.1, 0.6, 0.65, 0.65]
        slow = [0.1, 0.2, 0.3, 0.65]
        assert area_under_accuracy_curve(self.TIMES, fast) > area_under_accuracy_curve(
            self.TIMES, slow
        )

    def test_area_under_curve_with_horizon_extension(self):
        value = area_under_accuracy_curve([0.0, 10.0], [0.5, 0.5], horizon=20.0)
        assert value == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            time_to_accuracy([0.0, 1.0], [0.1], 0.5)
        with pytest.raises(ValueError):
            time_to_accuracy([1.0, 0.0], [0.1, 0.2], 0.5)
        with pytest.raises(ValueError):
            area_under_accuracy_curve([0.0, 1.0], [0.1, 0.2], horizon=0.0)


class TestThroughput:
    def test_updates_and_samples_per_second(self):
        summary = iteration_throughput(total_updates=100, total_time=10.0, samples_per_update=32)
        assert summary.updates_per_second == pytest.approx(10.0)
        assert summary.samples_per_second == pytest.approx(320.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            iteration_throughput(-1, 1.0)
        with pytest.raises(ValueError):
            iteration_throughput(1, 0.0)
        with pytest.raises(ValueError):
            iteration_throughput(1, 1.0, samples_per_update=-1)
