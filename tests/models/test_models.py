"""Tests for the model builders and the registry."""

import numpy as np
import pytest

from repro.models import (
    available_models,
    build_model,
    cifar_resnet,
    downsized_alexnet,
    logistic_regression,
    mlp,
    resnet20,
    resnet50,
    resnet110,
)
from repro.models.registry import ModelSpec, register_model
from repro.nn import Conv2d, Linear, SoftmaxCrossEntropy


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def forward_backward(model, inputs, labels):
    loss = SoftmaxCrossEntropy()
    logits = model.forward(inputs)
    value = loss.forward(logits, labels)
    model.backward(loss.backward())
    return logits, value


class TestAlexNet:
    def test_output_shape_and_structure(self, rng):
        model = downsized_alexnet(num_classes=10, image_size=16, width=4, fc_width=16, rng=rng)
        inputs = rng.normal(size=(2, 3, 16, 16))
        logits, loss = forward_backward(model, inputs, np.array([0, 1]))
        assert logits.shape == (2, 10)
        assert np.isfinite(loss)
        conv_layers = [m for _, m in model.named_modules() if isinstance(m, Conv2d)]
        linear_layers = [m for _, m in model.named_modules() if isinstance(m, Linear)]
        # The paper's downsized AlexNet: 3 conv layers and 2 FC layers.
        assert len(conv_layers) == 3
        assert len(linear_layers) == 2

    def test_fully_connected_stage_dominates_parameters(self, rng):
        """The property the paper's communication analysis relies on."""
        model = downsized_alexnet(num_classes=10, image_size=32, width=32, fc_width=256, rng=rng)
        parameters = model.parameters()
        fc_parameters = sum(
            parameter.size
            for name, parameter in parameters.items()
            if int(name.split(".")[0]) >= 10
        )
        assert fc_parameters > 0.5 * model.num_parameters()

    def test_small_images_rejected(self, rng):
        with pytest.raises(ValueError):
            downsized_alexnet(image_size=4, rng=rng)

    def test_dropout_disabled_variant(self, rng):
        model = downsized_alexnet(image_size=16, width=4, fc_width=8, dropout=0.0, rng=rng)
        inputs = rng.normal(size=(1, 3, 16, 16))
        first = model.forward(inputs)
        second = model.forward(inputs)
        assert np.allclose(first, second)


class TestResNets:
    def test_cifar_resnet_depth_validation(self, rng):
        with pytest.raises(ValueError):
            cifar_resnet(depth=13, rng=rng)
        with pytest.raises(ValueError):
            cifar_resnet(depth=20, base_width=0, rng=rng)

    def test_resnet20_trains_forward_backward(self, rng):
        model = resnet20(num_classes=7, base_width=4, rng=rng)
        inputs = rng.normal(size=(2, 3, 8, 8))
        logits, loss = forward_backward(model, inputs, np.array([0, 6]))
        assert logits.shape == (2, 7)
        assert np.isfinite(loss)

    def test_deeper_resnets_have_more_parameters(self, rng):
        shallow = resnet20(num_classes=10, base_width=4, rng=np.random.default_rng(0))
        deep = cifar_resnet(depth=32, num_classes=10, base_width=4, rng=np.random.default_rng(0))
        assert deep.num_parameters() > shallow.num_parameters()

    def test_resnet110_builder_depth(self, rng):
        # Building the full ResNet-110 is feasible; a forward pass on a tiny
        # width keeps the test fast while checking the block arithmetic.
        model = resnet110(num_classes=5, base_width=2, rng=rng)
        logits = model.forward(rng.normal(size=(1, 3, 8, 8)))
        assert logits.shape == (1, 5)
        conv_count = sum(1 for _, m in model.named_modules() if isinstance(m, Conv2d))
        # 110 = 6n+2 with n=18: 108 block convolutions + stem (plus projections).
        assert conv_count >= 109

    def test_resnet50_bottleneck_structure(self, rng):
        model = resnet50(num_classes=6, base_width=4, rng=rng)
        logits = model.forward(rng.normal(size=(1, 3, 8, 8)))
        assert logits.shape == (1, 6)

    def test_resnet50_invalid_stage_spec(self, rng):
        with pytest.raises(ValueError):
            resnet50(blocks_per_stage=(1, 2, 3), rng=rng)

    def test_no_hidden_fully_connected_layers(self, rng):
        """Pure-CNN property the paper's Section V-C analysis uses: the only
        Linear layer is the final classifier."""
        model = resnet20(num_classes=10, base_width=4, rng=rng)
        linear_layers = [m for _, m in model.named_modules() if isinstance(m, Linear)]
        assert len(linear_layers) == 1


class TestMlp:
    def test_mlp_shapes(self, rng):
        model = mlp(input_dim=12, hidden_dims=(8, 6), num_classes=3, rng=rng)
        logits = model.forward(rng.normal(size=(4, 12)))
        assert logits.shape == (4, 3)

    def test_logistic_regression_is_linear(self, rng):
        model = logistic_regression(input_dim=5, num_classes=2, rng=rng)
        assert len(list(model.named_parameters())) == 2

    def test_invalid_dimensions_rejected(self, rng):
        with pytest.raises(ValueError):
            mlp(input_dim=0, hidden_dims=(4,), num_classes=2, rng=rng)
        with pytest.raises(ValueError):
            mlp(input_dim=4, hidden_dims=(0,), num_classes=2, rng=rng)

    def test_batch_norm_and_dropout_options(self, rng):
        model = mlp(
            input_dim=6, hidden_dims=(8,), num_classes=2, dropout=0.2, batch_norm=True, rng=rng
        )
        logits = model.forward(rng.normal(size=(8, 6)))
        assert logits.shape == (8, 2)


class TestRegistry:
    def test_builtin_models_registered(self):
        names = set(available_models())
        assert {"downsized_alexnet", "resnet110", "resnet50", "mlp"} <= names

    def test_build_model_applies_overrides(self, rng):
        model = build_model("mlp", rng=rng, input_dim=6, hidden_dims=(4,), num_classes=3)
        assert model.forward(rng.normal(size=(2, 6))).shape == (2, 3)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("transformer")

    def test_duplicate_registration_rejected(self):
        spec = ModelSpec(name="mlp", builder=mlp, description="duplicate")
        with pytest.raises(ValueError):
            register_model(spec)

    def test_spec_metadata(self):
        spec = available_models()["downsized_alexnet"]
        assert spec.has_fully_connected_hidden
        assert not available_models()["resnet110"].has_fully_connected_hidden

    def test_same_seed_builds_identical_models(self):
        first = build_model("mlp", rng=np.random.default_rng(7))
        second = build_model("mlp", rng=np.random.default_rng(7))
        for (name_a, param_a), (name_b, param_b) in zip(
            first.named_parameters(), second.named_parameters()
        ):
            assert name_a == name_b
            assert np.allclose(param_a.data, param_b.data)
