"""Numerical gradient checking shared by the layer tests."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["input_gradient_error", "parameter_gradient_error"]


def _loss(output: np.ndarray, weights: np.ndarray) -> float:
    """Deterministic scalar function of the layer output."""
    return float(np.sum(output * weights))


def input_gradient_error(
    module: Module, inputs: np.ndarray, epsilon: float = 1e-5
) -> float:
    """Max absolute error between analytic and numerical input gradients."""
    inputs = np.asarray(inputs, dtype=np.float64)
    rng = np.random.default_rng(0)
    output = module.forward(inputs)
    weights = rng.normal(size=output.shape)
    module.zero_grad()
    analytic = module.backward(weights)

    numerical = np.zeros_like(inputs)
    flat = inputs.reshape(-1)
    numerical_flat = numerical.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = _loss(module.forward(inputs), weights)
        flat[index] = original - epsilon
        minus = _loss(module.forward(inputs), weights)
        flat[index] = original
        numerical_flat[index] = (plus - minus) / (2 * epsilon)
    return float(np.max(np.abs(analytic - numerical)))


def parameter_gradient_error(
    module: Module, inputs: np.ndarray, epsilon: float = 1e-5
) -> float:
    """Max absolute error between analytic and numerical parameter gradients."""
    inputs = np.asarray(inputs, dtype=np.float64)
    rng = np.random.default_rng(1)
    output = module.forward(inputs)
    weights = rng.normal(size=output.shape)
    module.zero_grad()
    module.backward(weights)

    worst = 0.0
    for _, parameter in module.named_parameters():
        analytic = parameter.grad.copy()
        numerical = np.zeros_like(parameter.data)
        flat = parameter.data.reshape(-1)
        numerical_flat = numerical.reshape(-1)
        for index in range(flat.size):
            original = flat[index]
            flat[index] = original + epsilon
            plus = _loss(module.forward(inputs), weights)
            flat[index] = original - epsilon
            minus = _loss(module.forward(inputs), weights)
            flat[index] = original
            numerical_flat[index] = (plus - minus) / (2 * epsilon)
        worst = max(worst, float(np.max(np.abs(analytic - numerical))))
    return worst
