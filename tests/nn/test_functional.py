"""Tests for the stateless numeric primitives (im2col, softmax, one-hot)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import (
    col2im,
    conv_output_size,
    im2col,
    log_softmax,
    one_hot,
    softmax,
)


class TestConvOutputSize:
    def test_basic_geometry(self):
        assert conv_output_size(32, kernel=3, stride=1, padding=1) == 32
        assert conv_output_size(32, kernel=2, stride=2, padding=0) == 16
        assert conv_output_size(8, kernel=3, stride=2, padding=1) == 4

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            conv_output_size(2, kernel=5, stride=1, padding=0)


class TestIm2Col:
    def test_shape(self):
        images = np.arange(2 * 3 * 4 * 4, dtype=np.float64).reshape(2, 3, 4, 4)
        cols = im2col(images, 3, 3, stride=1, padding=1)
        assert cols.shape == (2 * 4 * 4, 3 * 3 * 3)

    def test_identity_kernel_recovers_pixels(self):
        images = np.arange(1 * 1 * 3 * 3, dtype=np.float64).reshape(1, 1, 3, 3)
        cols = im2col(images, 1, 1, stride=1, padding=0)
        assert np.allclose(cols.ravel(), images.ravel())

    def test_col2im_is_adjoint_of_im2col(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        rng = np.random.default_rng(0)
        images = rng.normal(size=(2, 3, 6, 6))
        cols = im2col(images, 3, 3, stride=2, padding=1)
        other = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * other))
        rhs = float(np.sum(images * col2im(other, images.shape, 3, 3, stride=2, padding=1)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(
        kernel=st.integers(min_value=1, max_value=3),
        stride=st.integers(min_value=1, max_value=2),
        padding=st.integers(min_value=0, max_value=2),
        size=st.integers(min_value=4, max_value=7),
    )
    def test_adjoint_property_holds_generally(self, kernel, stride, padding, size):
        rng = np.random.default_rng(42)
        images = rng.normal(size=(1, 2, size, size))
        cols = im2col(images, kernel, kernel, stride=stride, padding=padding)
        other = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * other))
        rhs = float(
            np.sum(images * col2im(other, images.shape, kernel, kernel, stride, padding))
        )
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        probabilities = softmax(logits)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_numerical_stability_with_large_logits(self):
        logits = np.array([[1000.0, 1001.0]])
        probabilities = softmax(logits)
        assert np.all(np.isfinite(probabilities))

    def test_log_softmax_matches_log_of_softmax(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 7))
        assert np.allclose(log_softmax(logits), np.log(softmax(logits)))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=2,
            max_size=8,
        )
    )
    def test_probabilities_valid_for_arbitrary_logits(self, row):
        probabilities = softmax(np.array([row]))
        assert np.all(probabilities >= 0)
        assert probabilities.sum() == pytest.approx(1.0)


class TestBufferReuse:
    """The optional out=/padded=/stage= arguments reuse caller storage."""

    def test_im2col_writes_into_caller_buffer(self):
        rng = np.random.default_rng(0)
        images = rng.normal(size=(2, 3, 6, 6))
        expected = im2col(images, 3, 3, stride=1, padding=1)
        out = np.empty_like(expected)
        padded = np.zeros((2, 3, 8, 8))
        result = im2col(images, 3, 3, stride=1, padding=1, out=out, padded=padded)
        assert result is out
        assert np.array_equal(result, expected)
        # Reuse with different content: borders of the padded scratch stay
        # zero, so a second call is still exact.
        other = rng.normal(size=(2, 3, 6, 6))
        again = im2col(other, 3, 3, stride=1, padding=1, out=out, padded=padded)
        assert np.array_equal(again, im2col(other, 3, 3, stride=1, padding=1))

    def test_im2col_zero_padding_skips_the_padded_copy(self):
        rng = np.random.default_rng(1)
        images = rng.normal(size=(1, 2, 5, 5))
        expected = im2col(images, 2, 2, stride=1, padding=0)
        out = np.empty_like(expected)
        result = im2col(images, 2, 2, stride=1, padding=0, out=out, padded=None)
        assert np.array_equal(result, expected)

    @pytest.mark.parametrize("padding", [0, 1])
    def test_col2im_accumulates_into_reused_scratch(self, padding):
        rng = np.random.default_rng(2)
        image_shape = (2, 3, 6, 6)
        cols = rng.normal(size=im2col(np.zeros(image_shape), 3, 3, 1, padding).shape)
        expected = col2im(cols, image_shape, 3, 3, stride=1, padding=padding)
        scratch = np.full((2, 3, 6 + 2 * padding, 6 + 2 * padding), 99.0)
        out_size = conv_output_size(6, 3, 1, padding)
        stage = np.empty((2, 3, 3, 3, out_size, out_size))
        for _ in range(2):  # dirty scratch must be cleared on every call
            result = col2im(
                cols, image_shape, 3, 3, stride=1, padding=padding,
                padded=scratch, stage=stage,
            )
            assert np.array_equal(result, expected)

    def test_col2im_padding_zero_reuses_scratch_as_result(self):
        rng = np.random.default_rng(3)
        image_shape = (1, 2, 4, 4)
        cols = rng.normal(size=im2col(np.zeros(image_shape), 2, 2, 2, 0).shape)
        scratch = np.empty(image_shape)
        result = col2im(cols, image_shape, 2, 2, stride=2, padding=0, padded=scratch)
        assert result is scratch
        assert np.array_equal(
            result, col2im(cols, image_shape, 2, 2, stride=2, padding=0)
        )


class TestOneHot:
    def test_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), num_classes=3)
        assert np.allclose(encoded, np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]]))

    def test_defaults_to_float64(self):
        assert one_hot(np.array([0, 1]), num_classes=2).dtype == np.float64

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32])
    def test_respects_requested_dtype(self, dtype):
        encoded = one_hot(np.array([1, 0]), num_classes=2, dtype=dtype)
        assert encoded.dtype == dtype
        assert np.array_equal(encoded, np.array([[0, 1], [1, 0]], dtype=dtype))

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), num_classes=3)

    def test_rejects_non_vector_labels(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), num_classes=3)
