"""Tests for weight initializers and the Parameter container."""

import numpy as np
import pytest

from repro.nn import initializers
from repro.nn.parameter import Parameter


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestInitializers:
    def test_kaiming_uniform_bounds(self, rng):
        weights = initializers.kaiming_uniform((64, 128), rng)
        bound = np.sqrt(6.0 / 128)
        assert weights.shape == (64, 128)
        assert np.all(np.abs(weights) <= bound)

    def test_kaiming_normal_scale(self, rng):
        weights = initializers.kaiming_normal((256, 256), rng)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 256), rel=0.1)

    def test_conv_fan_in_uses_receptive_field(self, rng):
        weights = initializers.kaiming_uniform((8, 4, 3, 3), rng)
        bound = np.sqrt(6.0 / (4 * 9))
        assert np.all(np.abs(weights) <= bound)

    def test_xavier_uniform_bounds(self, rng):
        weights = initializers.xavier_uniform((32, 64), rng)
        bound = np.sqrt(6.0 / (32 + 64))
        assert np.all(np.abs(weights) <= bound)

    def test_zeros_and_ones(self):
        assert np.all(initializers.zeros((3, 3)) == 0)
        assert np.all(initializers.ones((3,)) == 1)

    def test_different_rngs_give_different_weights(self):
        a = initializers.kaiming_uniform((4, 4), np.random.default_rng(1))
        b = initializers.kaiming_uniform((4, 4), np.random.default_rng(2))
        assert not np.allclose(a, b)


class TestParameter:
    def test_initial_gradient_is_zero(self):
        parameter = Parameter(np.ones((2, 3)))
        assert parameter.shape == (2, 3)
        assert parameter.size == 6
        assert np.all(parameter.grad == 0)

    def test_accumulate_grad_adds(self):
        parameter = Parameter(np.zeros(3))
        parameter.accumulate_grad(np.ones(3))
        parameter.accumulate_grad(np.ones(3))
        assert np.allclose(parameter.grad, 2.0)

    def test_accumulate_grad_shape_checked(self):
        parameter = Parameter(np.zeros(3))
        with pytest.raises(ValueError):
            parameter.accumulate_grad(np.zeros(4))

    def test_zero_grad(self):
        parameter = Parameter(np.zeros(3))
        parameter.accumulate_grad(np.ones(3))
        parameter.zero_grad()
        assert np.all(parameter.grad == 0)

    def test_data_stored_as_float64(self):
        parameter = Parameter(np.array([1, 2, 3], dtype=np.int32))
        assert parameter.data.dtype == np.float64
