"""Forward/backward tests for the individual layers, with numerical
gradient checks on small inputs."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from tests.nn.gradcheck import input_gradient_error, parameter_gradient_error

TOLERANCE = 1e-6


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_output_shape_and_values(self, rng):
        layer = Linear(4, 3, rng=rng)
        inputs = rng.normal(size=(5, 4))
        outputs = layer.forward(inputs)
        assert outputs.shape == (5, 3)
        expected = inputs @ layer.weight.data.T + layer.bias.data
        assert np.allclose(outputs, expected)

    def test_rejects_wrong_input_width(self, rng):
        layer = Linear(4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(5, 7)))

    def test_gradients_match_numerical(self, rng):
        layer = Linear(4, 3, rng=rng)
        inputs = rng.normal(size=(3, 4))
        assert input_gradient_error(layer, inputs) < TOLERANCE
        assert parameter_gradient_error(layer, inputs) < TOLERANCE

    def test_no_bias_variant(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert "bias" not in layer.parameters()

    def test_backward_before_forward_fails(self, rng):
        layer = Linear(2, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestConv2d:
    def test_output_shape(self, rng):
        layer = Conv2d(3, 5, kernel_size=3, stride=1, padding=1, rng=rng)
        outputs = layer.forward(rng.normal(size=(2, 3, 8, 8)))
        assert outputs.shape == (2, 5, 8, 8)

    def test_strided_output_shape(self, rng):
        layer = Conv2d(2, 4, kernel_size=3, stride=2, padding=1, rng=rng)
        outputs = layer.forward(rng.normal(size=(1, 2, 8, 8)))
        assert outputs.shape == (1, 4, 4, 4)

    def test_matches_direct_convolution(self, rng):
        layer = Conv2d(1, 1, kernel_size=2, stride=1, padding=0, bias=False, rng=rng)
        layer.weight.data[...] = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        image = np.arange(9, dtype=np.float64).reshape(1, 1, 3, 3)
        output = layer.forward(image)
        # Manually computed 2x2 valid convolution (cross-correlation).
        expected = np.array(
            [[[[1 * 0 + 2 * 1 + 3 * 3 + 4 * 4, 1 * 1 + 2 * 2 + 3 * 4 + 4 * 5],
               [1 * 3 + 2 * 4 + 3 * 6 + 4 * 7, 1 * 4 + 2 * 5 + 3 * 7 + 4 * 8]]]],
            dtype=np.float64,
        )
        assert np.allclose(output, expected)

    def test_gradients_match_numerical(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, stride=1, padding=1, rng=rng)
        inputs = rng.normal(size=(2, 2, 4, 4))
        assert input_gradient_error(layer, inputs) < TOLERANCE
        assert parameter_gradient_error(layer, inputs) < TOLERANCE

    def test_rejects_wrong_channel_count(self, rng):
        layer = Conv2d(3, 4, kernel_size=3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 2, 8, 8)))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            Conv2d(0, 1, 3)
        with pytest.raises(ValueError):
            Conv2d(1, 1, 3, stride=0)


class TestPooling:
    def test_max_pool_values(self):
        layer = MaxPool2d(kernel_size=2, stride=2)
        image = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert layer.forward(image).item() == 4.0

    def test_max_pool_gradient_routes_to_argmax(self):
        layer = MaxPool2d(kernel_size=2, stride=2)
        image = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer.forward(image)
        grad = layer.backward(np.array([[[[1.0]]]]))
        assert np.allclose(grad, np.array([[[[0.0, 0.0], [0.0, 1.0]]]]))

    def test_max_pool_gradients_match_numerical(self, rng):
        layer = MaxPool2d(kernel_size=2, stride=2)
        inputs = rng.normal(size=(2, 2, 4, 4))
        assert input_gradient_error(layer, inputs) < TOLERANCE

    def test_avg_pool_values_and_gradients(self, rng):
        layer = AvgPool2d(kernel_size=2, stride=2)
        image = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert layer.forward(image).item() == pytest.approx(2.5)
        inputs = rng.normal(size=(2, 2, 4, 4))
        assert input_gradient_error(layer, inputs) < TOLERANCE

    def test_global_avg_pool(self, rng):
        layer = GlobalAvgPool2d()
        inputs = rng.normal(size=(3, 4, 5, 5))
        outputs = layer.forward(inputs)
        assert outputs.shape == (3, 4)
        assert np.allclose(outputs, inputs.mean(axis=(2, 3)))
        assert input_gradient_error(layer, inputs) < TOLERANCE


class TestActivations:
    @pytest.mark.parametrize("activation_cls", [ReLU, LeakyReLU, Sigmoid, Tanh])
    def test_gradients_match_numerical(self, activation_cls, rng):
        layer = activation_cls()
        # Keep inputs away from ReLU's kink at zero for a clean check.
        inputs = rng.normal(size=(4, 6)) + 0.1 * np.sign(rng.normal(size=(4, 6)))
        inputs[np.abs(inputs) < 0.05] = 0.5
        assert input_gradient_error(layer, inputs) < 1e-5

    def test_relu_zeroes_negatives(self):
        layer = ReLU()
        assert np.allclose(layer.forward(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_leaky_relu_scales_negatives(self):
        layer = LeakyReLU(negative_slope=0.1)
        assert np.allclose(layer.forward(np.array([-1.0, 2.0])), [-0.1, 2.0])

    def test_sigmoid_range(self, rng):
        outputs = Sigmoid().forward(rng.normal(size=(10,)) * 5)
        assert np.all((outputs > 0) & (outputs < 1))


class TestBatchNorm:
    def test_training_normalizes_batch(self, rng):
        layer = BatchNorm1d(4)
        inputs = rng.normal(loc=3.0, scale=2.0, size=(64, 4))
        outputs = layer.forward(inputs)
        assert np.allclose(outputs.mean(axis=0), 0.0, atol=1e-8)
        assert np.allclose(outputs.std(axis=0), 1.0, atol=1e-2)

    def test_running_statistics_updated(self, rng):
        layer = BatchNorm1d(2, momentum=0.5)
        inputs = rng.normal(loc=5.0, size=(32, 2))
        layer.forward(inputs)
        running_mean = layer.buffers()["running_mean"]
        assert np.all(running_mean > 1.0)

    def test_eval_uses_running_statistics(self, rng):
        layer = BatchNorm1d(2, momentum=1.0)
        train_inputs = rng.normal(loc=5.0, size=(64, 2))
        layer.forward(train_inputs)
        layer.eval()
        shifted = rng.normal(loc=-5.0, size=(8, 2))
        outputs = layer.forward(shifted)
        # With running stats centred near +5, inputs near -5 normalize to
        # strongly negative values rather than to zero mean.
        assert outputs.mean() < -1.0

    def test_batchnorm2d_gradients_match_numerical(self, rng):
        layer = BatchNorm2d(3)
        inputs = rng.normal(size=(4, 3, 3, 3))
        assert input_gradient_error(layer, inputs) < 1e-5
        assert parameter_gradient_error(layer, inputs) < 1e-5

    def test_batchnorm1d_gradients_match_numerical(self, rng):
        layer = BatchNorm1d(5)
        inputs = rng.normal(size=(8, 5))
        assert input_gradient_error(layer, inputs) < 1e-5

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            BatchNorm1d(3).forward(rng.normal(size=(2, 4)))
        with pytest.raises(ValueError):
            BatchNorm2d(3).forward(rng.normal(size=(2, 4, 3, 3)))


class TestDropoutAndFlatten:
    def test_dropout_identity_in_eval_mode(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        inputs = rng.normal(size=(5, 5))
        assert np.allclose(layer.forward(inputs), inputs)

    def test_dropout_preserves_expectation(self, rng):
        layer = Dropout(0.3, rng=rng)
        inputs = np.ones((200, 200))
        outputs = layer.forward(inputs)
        assert outputs.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_dropout_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng=rng)
        inputs = np.ones((10, 10))
        outputs = layer.forward(inputs)
        grads = layer.backward(np.ones_like(inputs))
        assert np.allclose(grads, outputs)

    def test_flatten_round_trip(self, rng):
        layer = Flatten()
        inputs = rng.normal(size=(3, 2, 4, 4))
        outputs = layer.forward(inputs)
        assert outputs.shape == (3, 32)
        restored = layer.backward(outputs)
        assert np.allclose(restored, inputs)
