"""Tests for the Module base class, Sequential/Residual containers and losses."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    Identity,
    Linear,
    MeanSquaredError,
    ReLU,
    Residual,
    Sequential,
    SoftmaxCrossEntropy,
)
from repro.nn.functional import softmax
from tests.nn.gradcheck import input_gradient_error, parameter_gradient_error


@pytest.fixture
def rng():
    return np.random.default_rng(2)


@pytest.fixture
def small_net(rng):
    return Sequential(Linear(6, 8, rng=rng), ReLU(), BatchNorm1d(8), Linear(8, 3, rng=rng))


class TestModuleState:
    def test_named_parameters_are_hierarchical(self, small_net):
        names = list(dict(small_net.named_parameters()))
        assert "0.weight" in names
        assert "3.bias" in names

    def test_state_dict_round_trip(self, small_net, rng):
        state = small_net.state_dict()
        clone = Sequential(Linear(6, 8, rng=rng), ReLU(), BatchNorm1d(8), Linear(8, 3, rng=rng))
        clone.load_state_dict(state)
        inputs = rng.normal(size=(4, 6))
        small_net.eval()
        clone.eval()
        assert np.allclose(small_net.forward(inputs), clone.forward(inputs))

    def test_state_dict_includes_buffers(self, small_net):
        assert "2.running_mean" in small_net.state_dict()

    def test_load_rejects_unknown_keys(self, small_net):
        state = small_net.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            small_net.load_state_dict(state)

    def test_load_rejects_missing_keys_when_strict(self, small_net):
        state = small_net.state_dict()
        state.pop("0.weight")
        with pytest.raises(KeyError):
            small_net.load_state_dict(state)
        small_net.load_state_dict(state, strict=False)

    def test_load_rejects_shape_mismatch(self, small_net):
        state = small_net.state_dict()
        state["0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            small_net.load_state_dict(state)

    def test_zero_grad_resets_all_gradients(self, small_net, rng):
        loss = SoftmaxCrossEntropy()
        logits = small_net.forward(rng.normal(size=(4, 6)))
        loss.forward(logits, np.array([0, 1, 2, 0]))
        small_net.backward(loss.backward())
        assert any(np.any(p.grad != 0) for _, p in small_net.named_parameters())
        small_net.zero_grad()
        assert all(np.all(p.grad == 0) for _, p in small_net.named_parameters())

    def test_gradients_and_apply_gradients_round_trip(self, small_net, rng):
        loss = SoftmaxCrossEntropy()
        logits = small_net.forward(rng.normal(size=(4, 6)))
        loss.forward(logits, np.array([0, 1, 2, 0]))
        small_net.backward(loss.backward())
        grads = small_net.gradients()
        small_net.zero_grad()
        small_net.apply_gradients(grads)
        assert np.allclose(small_net.gradients()["0.weight"], grads["0.weight"])

    def test_apply_gradients_validates_names_and_shapes(self, small_net):
        with pytest.raises(KeyError):
            small_net.apply_gradients({"missing": np.zeros(2)})
        with pytest.raises(ValueError):
            small_net.apply_gradients({"0.weight": np.zeros((1, 1))})

    def test_num_parameters_counts_scalars(self, rng):
        net = Sequential(Linear(3, 2, rng=rng))
        assert net.num_parameters() == 3 * 2 + 2

    def test_train_eval_propagates(self, small_net):
        small_net.eval()
        assert all(not module.training for _, module in small_net.named_modules())
        small_net.train()
        assert all(module.training for _, module in small_net.named_modules())


class TestSequential:
    def test_indexing_and_iteration(self, small_net):
        assert isinstance(small_net[0], Linear)
        assert len(small_net) == 4
        assert len(list(iter(small_net))) == 4

    def test_append(self, rng):
        net = Sequential(Linear(2, 2, rng=rng))
        net.append(ReLU())
        assert len(net) == 2

    def test_rejects_non_modules(self):
        with pytest.raises(TypeError):
            Sequential(Linear(2, 2), "not-a-module")

    def test_backward_composes_in_reverse(self, rng):
        net = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        inputs = rng.normal(size=(3, 4))
        assert input_gradient_error(net, inputs) < 1e-6
        assert parameter_gradient_error(net, inputs) < 1e-6


class TestResidual:
    def test_identity_shortcut_adds_input(self, rng):
        body = Sequential(Linear(4, 4, rng=rng))
        block = Residual(body)
        inputs = rng.normal(size=(2, 4))
        expected = body.forward(inputs) + inputs
        assert np.allclose(block.forward(inputs), expected)

    def test_gradients_flow_through_both_branches(self, rng):
        block = Residual(Sequential(Linear(4, 4, rng=rng), ReLU()))
        inputs = rng.normal(size=(3, 4)) + 0.2
        assert input_gradient_error(block, inputs) < 1e-5
        assert parameter_gradient_error(block, inputs) < 1e-5

    def test_projection_shortcut(self, rng):
        block = Residual(Sequential(Linear(4, 2, rng=rng)), Sequential(Linear(4, 2, rng=rng)))
        assert block.forward(rng.normal(size=(3, 4))).shape == (3, 2)

    def test_identity_module_passthrough(self, rng):
        identity = Identity()
        inputs = rng.normal(size=(2, 3))
        assert np.allclose(identity.forward(inputs), inputs)
        assert np.allclose(identity.backward(inputs), inputs)


class TestLosses:
    def test_cross_entropy_of_uniform_prediction(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 10))
        value = loss.forward(logits, np.array([0, 1, 2, 3]))
        assert value == pytest.approx(np.log(10))

    def test_cross_entropy_gradient_formula(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(5, 3))
        labels = np.array([0, 1, 2, 1, 0])
        loss.forward(logits, labels)
        grad = loss.backward()
        probabilities = softmax(logits, axis=1)
        expected = probabilities.copy()
        expected[np.arange(5), labels] -= 1.0
        assert np.allclose(grad, expected / 5)

    def test_cross_entropy_gradient_matches_numerical(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 3, 2])
        loss.forward(logits, labels)
        analytic = loss.backward()
        epsilon = 1e-6
        numerical = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                logits[i, j] += epsilon
                plus = loss.forward(logits, labels)
                logits[i, j] -= 2 * epsilon
                minus = loss.forward(logits, labels)
                logits[i, j] += epsilon
                numerical[i, j] = (plus - minus) / (2 * epsilon)
        assert np.allclose(analytic, numerical, atol=1e-6)

    def test_cross_entropy_validates_shapes(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.array([0]))
        with pytest.raises(ValueError):
            loss.forward(np.zeros(3), np.array([0]))

    def test_mse_value_and_gradient(self, rng):
        loss = MeanSquaredError()
        predictions = np.array([1.0, 2.0])
        targets = np.array([0.0, 0.0])
        assert loss.forward(predictions, targets) == pytest.approx(2.5)
        assert np.allclose(loss.backward(), [1.0, 2.0])

    def test_mse_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MeanSquaredError().forward(np.zeros(3), np.zeros(4))

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()
        with pytest.raises(RuntimeError):
            MeanSquaredError().backward()
