"""Workspace hot-path tests: arena semantics, bit-for-bit kernel
equivalence against the reference path, steady-state allocation freedom,
gradient checks, and the in-place ReLU.

Equivalence contract (see docs/performance.md): every workspace kernel is
bit-for-bit identical to its reference implementation given the same input
array, with two documented-tolerance exceptions that re-associate the
arithmetic and agree to rounding error instead: fused BatchNorm (folded
scale-shift, single-pass statistics) and the stride-1 convolution input
gradient (correlation with the flipped kernel instead of a col2im
scatter-add).  At the whole-model level intermediate layouts differ too
(the workspace path keeps activations contiguous), so reductions round
differently in the last ulp and the curves agree to the same tolerance.
"""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    GlobalAvgPool2d,
    LeakyReLU,
    Linear,
    MaxPool2d,
    MeanSquaredError,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
    SoftmaxCrossEntropy,
    Tanh,
    Workspace,
)
from repro.models.resnet import resnet20
from tests.nn.gradcheck import input_gradient_error, parameter_gradient_error

TOLERANCE = 1e-6


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# ----------------------------------------------------------------------
# Workspace arena semantics
# ----------------------------------------------------------------------
class TestWorkspaceArena:
    def test_same_key_returns_same_buffer(self):
        workspace = Workspace()
        first = workspace.get("cols", (4, 8))
        second = workspace.get("cols", (4, 8))
        assert first is second
        assert workspace.allocations == 1

    def test_distinct_shapes_get_distinct_buffers(self):
        workspace = Workspace()
        a = workspace.get("cols", (4, 8))
        b = workspace.get("cols", (2, 8))
        assert a is not b
        assert workspace.allocations == 2
        # Revisiting either shape stays allocation-free.
        workspace.get("cols", (4, 8))
        workspace.get("cols", (2, 8))
        assert workspace.allocations == 2

    def test_dtype_is_part_of_the_key(self):
        workspace = Workspace()
        a = workspace.get("mask", (3,), dtype=bool)
        b = workspace.get("mask", (3,), dtype=np.float64)
        assert a.dtype == np.bool_ and b.dtype == np.float64
        assert workspace.allocations == 2

    def test_buffers_are_zeroed_on_creation_and_on_zero_flag(self):
        workspace = Workspace()
        buffer = workspace.get("scratch", (4,))
        assert np.all(buffer == 0.0)
        buffer[...] = 7.0
        assert np.all(workspace.get("scratch", (4,)) == 7.0)  # reuse keeps data
        assert np.all(workspace.get("scratch", (4,), zero=True) == 0.0)

    def test_nbytes_tracks_growth_and_clear(self):
        workspace = Workspace()
        workspace.get("a", (8,))
        assert workspace.nbytes == 8 * 8
        workspace.clear()
        assert workspace.nbytes == 0 and workspace.num_buffers == 0
        # The allocation counter is monotonic history, not current state.
        assert workspace.allocations == 1


# ----------------------------------------------------------------------
# Module-level enable/disable
# ----------------------------------------------------------------------
class TestModuleWorkspacePlumbing:
    def test_enable_gives_every_module_its_own_arena(self, rng):
        model = resnet20(num_classes=10, rng=rng)
        model.enable_workspace()
        arenas = {id(m._workspace) for _, m in model.named_modules()}
        count = sum(1 for _ in model.named_modules())
        assert len(arenas) == count  # one private arena each
        assert model.workspace_enabled

    def test_disable_restores_reference_path(self, rng):
        layer = Linear(4, 3, rng=rng)
        layer.enable_workspace().disable_workspace()
        assert not layer.workspace_enabled
        out = layer.forward(rng.normal(size=(2, 4)))
        assert out.flags.owndata  # freshly allocated, not a workspace view

    def test_stats_aggregate_over_the_tree(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        model.enable_workspace()
        model.forward(rng.normal(size=(3, 4)))
        stats = model.workspace_stats()
        assert stats["allocations"] > 0
        assert stats["nbytes"] > 0
        assert stats["buffers"] == stats["allocations"]


# ----------------------------------------------------------------------
# Bit-for-bit equivalence with the reference kernels
# ----------------------------------------------------------------------
def _pair(make_layer):
    """Two identically initialized layers: reference and workspace-enabled."""
    reference = make_layer(np.random.default_rng(7))
    workspace = make_layer(np.random.default_rng(7))
    workspace.enable_workspace()
    return reference, workspace


def _forward_backward(layer, inputs, grad):
    output = layer.forward(inputs)
    layer.zero_grad()
    grad_input = layer.backward(grad)
    grads = {name: p.grad.copy() for name, p in layer.named_parameters()}
    return np.array(output, copy=True), np.array(grad_input, copy=True), grads


#: (id, builder, input shape, grad_input exact?).  Stride-1 convolutions
#: compute the input gradient as a correlation with the flipped kernel,
#: which reduces in one matmul instead of per offset — rounding-error
#: agreement (documented tolerance); everything else is bit-exact, as are
#: conv outputs and parameter gradients in every geometry.
LAYER_CASES = [
    ("linear", lambda r: Linear(6, 4, rng=r), (3, 6), True),
    ("conv3x3_pad", lambda r: Conv2d(2, 5, 3, stride=1, padding=1, rng=r), (2, 2, 8, 8), False),
    ("conv1x1_s1", lambda r: Conv2d(3, 4, 1, stride=1, padding=0, rng=r), (2, 3, 8, 8), False),
    ("conv1x1_s2", lambda r: Conv2d(3, 4, 1, stride=2, padding=0, rng=r), (2, 3, 8, 8), True),
    ("conv3x3_s2", lambda r: Conv2d(2, 4, 3, stride=2, padding=1, rng=r), (2, 2, 8, 8), True),
    ("relu", lambda r: ReLU(), (4, 6), True),
    ("leaky_relu", lambda r: LeakyReLU(0.1), (4, 6), True),
    ("sigmoid", lambda r: Sigmoid(), (4, 6), True),
    ("tanh", lambda r: Tanh(), (4, 6), True),
    ("maxpool", lambda r: MaxPool2d(2, stride=2), (2, 3, 8, 8), True),
    ("avgpool", lambda r: AvgPool2d(2, stride=2, padding=1), (2, 3, 8, 8), True),
    ("global_avgpool", lambda r: GlobalAvgPool2d(), (2, 3, 6, 6), True),
]


class TestBitForBitEquivalence:
    @pytest.mark.parametrize(
        "make_layer,input_shape,grad_input_exact",
        [case[1:] for case in LAYER_CASES],
        ids=[case[0] for case in LAYER_CASES],
    )
    def test_layer_matches_reference_exactly(
        self, make_layer, input_shape, grad_input_exact, rng
    ):
        reference, workspaced = _pair(make_layer)
        inputs = rng.normal(size=input_shape)
        grad = rng.normal(size=reference.forward(inputs).shape)

        expected = _forward_backward(reference, inputs, grad)
        # Two rounds through the workspace path: the second reuses every
        # buffer, which is where stale-state bugs would show up.
        for _ in range(2):
            out, grad_input, grads = _forward_backward(workspaced, inputs, grad)
            assert np.array_equal(expected[0], out)
            if grad_input_exact:
                assert np.array_equal(expected[1], grad_input)
            else:
                np.testing.assert_allclose(
                    expected[1], grad_input, rtol=1e-12, atol=1e-14
                )
            for name, value in expected[2].items():
                assert np.array_equal(value, grads[name]), name

    @pytest.mark.parametrize("cls,shape", [(BatchNorm1d, (16, 5)), (BatchNorm2d, (4, 5, 6, 6))])
    @pytest.mark.parametrize("training", [True, False], ids=["train", "eval"])
    def test_fused_batchnorm_matches_to_documented_tolerance(
        self, cls, shape, training, rng
    ):
        """Fused BN re-associates the arithmetic: rounding-error agreement."""
        reference, workspaced = _pair(lambda r: cls(shape[1]))
        if not training:
            warm = rng.normal(loc=1.0, size=shape) * 2.0
            for layer in (reference, workspaced):
                layer.forward(warm)  # identical running statistics
                layer.eval()
        inputs = np.random.default_rng(3).normal(size=shape)
        grad = np.random.default_rng(4).normal(size=shape)

        # Two rounds each (the second reuses every workspace buffer), with
        # the running statistics compared round for round.
        for _ in range(2):
            expected = _forward_backward(reference, inputs, grad)
            out, grad_input, grads = _forward_backward(workspaced, inputs, grad)
            np.testing.assert_allclose(expected[0], out, rtol=1e-12, atol=1e-13)
            np.testing.assert_allclose(expected[1], grad_input, rtol=1e-9, atol=1e-13)
            for name, value in expected[2].items():
                np.testing.assert_allclose(
                    value, grads[name], rtol=1e-9, atol=1e-13, err_msg=name
                )
            for name, buffer in reference.buffers().items():
                np.testing.assert_allclose(
                    buffer, dict(workspaced.buffers())[name], rtol=1e-12, err_msg=name
                )

    def test_dropout_matches_reference_exactly(self):
        reference = Dropout(0.4, rng=np.random.default_rng(11))
        workspaced = Dropout(0.4, rng=np.random.default_rng(11)).enable_workspace()
        inputs = np.random.default_rng(0).normal(size=(8, 8))
        grad = np.random.default_rng(1).normal(size=(8, 8))
        for _ in range(2):  # identical RNG consumption on both paths
            expected = _forward_backward(reference, inputs, grad)
            actual = _forward_backward(workspaced, inputs, grad)
            assert np.array_equal(expected[0], actual[0])
            assert np.array_equal(expected[1], actual[1])

    def test_residual_matches_reference_exactly(self, rng):
        def make(r):
            return Sequential(
                Residual(
                    Sequential(Conv2d(3, 3, 3, padding=1, bias=False, rng=r), BatchNorm2d(3), ReLU()),
                ),
                ReLU(),
            )

        reference, workspaced = _pair(make)
        inputs = rng.normal(size=(2, 3, 6, 6))
        grad = rng.normal(size=(2, 3, 6, 6))
        expected = _forward_backward(reference, inputs, grad)
        actual = _forward_backward(workspaced, inputs, grad)
        # Contains a BatchNorm, so tolerance rather than equality.
        np.testing.assert_allclose(expected[0], actual[0], rtol=1e-12, atol=1e-13)
        np.testing.assert_allclose(expected[1], actual[1], rtol=1e-9, atol=1e-12)

    def test_softmax_cross_entropy_matches_exactly(self, rng):
        reference = SoftmaxCrossEntropy()
        workspaced = SoftmaxCrossEntropy().enable_workspace()
        logits = rng.normal(size=(6, 9))
        labels = rng.integers(0, 9, size=6)
        expected_loss = reference.forward(logits, labels)
        expected_grad = reference.backward()
        for _ in range(2):
            assert workspaced.forward(logits, labels) == expected_loss
            assert np.array_equal(workspaced.backward(), expected_grad)

    def test_mean_squared_error_matches_exactly(self, rng):
        reference = MeanSquaredError()
        workspaced = MeanSquaredError().enable_workspace()
        predictions = rng.normal(size=(5, 3))
        targets = rng.normal(size=(5, 3))
        expected_loss = reference.forward(predictions, targets)
        expected_grad = reference.backward()
        for _ in range(2):
            assert workspaced.forward(predictions, targets) == expected_loss
            assert np.array_equal(workspaced.backward(), expected_grad)

    def test_whole_model_agrees_to_documented_tolerance(self, rng):
        """Reference and workspace resnets agree to rounding error."""
        reference = resnet20(num_classes=10, rng=np.random.default_rng(42))
        workspaced = resnet20(num_classes=10, rng=np.random.default_rng(42))
        workspaced.enable_workspace()
        loss_ref, loss_ws = SoftmaxCrossEntropy(), SoftmaxCrossEntropy().enable_workspace()
        inputs = rng.normal(size=(4, 3, 12, 12))
        labels = rng.integers(0, 10, size=4)

        out_ref = reference.forward(inputs)
        out_ws = workspaced.forward(inputs)
        np.testing.assert_allclose(out_ref, out_ws, rtol=1e-9, atol=1e-12)
        value_ref = loss_ref.forward(out_ref, labels)
        value_ws = loss_ws.forward(out_ws, labels)
        assert value_ws == pytest.approx(value_ref, rel=1e-12)
        reference.zero_grad()
        workspaced.zero_grad()
        grad_ref = reference.backward(loss_ref.backward())
        grad_ws = workspaced.backward(loss_ws.backward())
        np.testing.assert_allclose(grad_ref, grad_ws, rtol=1e-6, atol=1e-12)


# ----------------------------------------------------------------------
# Dtype handling of the functional kernels
# ----------------------------------------------------------------------
class TestFunctionalDtypes:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_im2col_col2im_respect_dtype(self, dtype, rng):
        from repro.nn.functional import col2im, im2col

        images = rng.normal(size=(2, 3, 6, 6)).astype(dtype)
        cols = im2col(images, 3, 3, stride=1, padding=1)
        assert cols.dtype == dtype
        back = col2im(cols, images.shape, 3, 3, stride=1, padding=1)
        assert back.dtype == dtype


# ----------------------------------------------------------------------
# Steady-state allocation freedom
# ----------------------------------------------------------------------
class TestAllocationFreedom:
    def test_resnet_step_allocates_nothing_after_warmup(self, rng):
        model = resnet20(num_classes=10, rng=np.random.default_rng(0))
        model.enable_workspace()
        loss = SoftmaxCrossEntropy().enable_workspace()
        inputs = rng.normal(size=(4, 3, 12, 12))
        labels = rng.integers(0, 10, size=4)

        def step():
            out = model.forward(inputs)
            loss.forward(out, labels)
            model.zero_grad()
            model.backward(loss.backward())

        step()  # warm-up allocates every buffer once
        baseline = model.workspace_stats()["allocations"]
        assert baseline > 0
        for _ in range(3):
            step()
        assert model.workspace_stats()["allocations"] == baseline
        assert loss._workspace.allocations == len(loss._workspace._buffers)

    def test_alternating_batch_sizes_stay_allocation_free_once_seen(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(0))
        layer.enable_workspace()
        small = rng.normal(size=(2, 2, 6, 6))
        large = rng.normal(size=(4, 2, 6, 6))
        for inputs in (small, large):  # warm both shapes
            layer.backward(np.ones_like(layer.forward(inputs)))
        baseline = layer.workspace_stats()["allocations"]
        for inputs in (small, large, small, large):
            layer.backward(np.ones_like(layer.forward(inputs)))
        assert layer.workspace_stats()["allocations"] == baseline


# ----------------------------------------------------------------------
# Gradient checks on the workspace path
# ----------------------------------------------------------------------
class TestWorkspaceGradients:
    @pytest.mark.parametrize(
        "make_layer,input_shape",
        [
            (lambda r: Linear(4, 3, rng=r), (3, 4)),
            (lambda r: Conv2d(2, 3, 3, stride=1, padding=1, rng=r), (2, 2, 4, 4)),
            (lambda r: MaxPool2d(2, stride=2), (2, 2, 4, 4)),
            (lambda r: GlobalAvgPool2d(), (3, 4, 5, 5)),
        ],
        ids=["linear", "conv", "maxpool", "gap"],
    )
    def test_input_gradients_match_numerical(self, make_layer, input_shape, rng):
        layer = make_layer(rng)
        layer.enable_workspace()
        inputs = np.random.default_rng(5).normal(size=input_shape)
        assert input_gradient_error(layer, inputs) < TOLERANCE

    def test_conv_parameter_gradients_match_numerical(self, rng):
        layer = Conv2d(2, 3, 3, stride=1, padding=1, rng=rng)
        layer.enable_workspace()
        inputs = np.random.default_rng(5).normal(size=(2, 2, 4, 4))
        assert parameter_gradient_error(layer, inputs) < TOLERANCE

    def test_fused_batchnorm_gradients_match_numerical(self, rng):
        for layer, shape in ((BatchNorm1d(5), (8, 5)), (BatchNorm2d(3), (4, 3, 3, 3))):
            layer.enable_workspace()
            inputs = np.random.default_rng(5).normal(size=shape)
            assert input_gradient_error(layer, inputs) < 1e-5
            assert parameter_gradient_error(layer, inputs) < 1e-5


# ----------------------------------------------------------------------
# In-place ReLU
# ----------------------------------------------------------------------
class TestInPlaceReLU:
    def test_inplace_overwrites_its_input(self):
        layer = ReLU(inplace=True)
        inputs = np.array([-1.0, 2.0, -3.0, 4.0])
        output = layer.forward(inputs)
        assert output is inputs
        assert np.array_equal(inputs, [0.0, 2.0, 0.0, 4.0])

    def test_inplace_backward_matches_reference(self, rng):
        values = rng.normal(size=(4, 4))
        grad = rng.normal(size=(4, 4))
        reference = ReLU()
        expected = reference.forward(values.copy())
        expected_grad = reference.backward(grad)
        inplace = ReLU(inplace=True)
        assert np.array_equal(inplace.forward(values.copy()), expected)
        assert np.array_equal(inplace.backward(grad), expected_grad)

    def test_inplace_falls_back_on_read_only_input(self):
        layer = ReLU(inplace=True)
        inputs = np.array([-1.0, 2.0])
        inputs.setflags(write=False)
        output = layer.forward(inputs)
        assert output is not inputs
        assert np.array_equal(output, [0.0, 2.0])
        assert np.array_equal(inputs, [-1.0, 2.0])

    def test_inplace_with_workspace(self, rng):
        layer = ReLU(inplace=True)
        layer.enable_workspace()
        inputs = rng.normal(size=(3, 3))
        expected = np.maximum(inputs, 0.0)
        output = layer.forward(inputs)
        assert output is inputs
        assert np.array_equal(output, expected)
        baseline = layer.workspace_stats()["allocations"]
        layer.forward(rng.normal(size=(3, 3)))
        assert layer.workspace_stats()["allocations"] == baseline
