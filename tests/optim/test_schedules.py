"""Tests for the learning-rate schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim.schedules import (
    ConstantSchedule,
    MultiStepSchedule,
    PolynomialDecaySchedule,
    StepDecaySchedule,
    WarmupSchedule,
)


class TestConstant:
    def test_always_base_rate(self):
        schedule = ConstantSchedule(0.05)
        assert schedule.learning_rate(0) == 0.05
        assert schedule.learning_rate(1000) == 0.05

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)


class TestStepDecay:
    def test_decays_every_step_size(self):
        schedule = StepDecaySchedule(1.0, step_size=10, decay=0.5)
        assert schedule.learning_rate(0) == 1.0
        assert schedule.learning_rate(9.9) == 1.0
        assert schedule.learning_rate(10) == 0.5
        assert schedule.learning_rate(25) == 0.25

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            StepDecaySchedule(1.0, step_size=0, decay=0.5)
        with pytest.raises(ValueError):
            StepDecaySchedule(1.0, step_size=1, decay=0.0)


class TestMultiStep:
    def test_paper_schedule(self):
        """The paper decays lr 0.05 by 0.1 at epochs 200 and 250 (of 300)."""
        schedule = MultiStepSchedule(0.05, milestones=(200, 250), decay=0.1)
        assert schedule.learning_rate(100) == pytest.approx(0.05)
        assert schedule.learning_rate(200) == pytest.approx(0.005)
        assert schedule.learning_rate(249) == pytest.approx(0.005)
        assert schedule.learning_rate(250) == pytest.approx(0.0005)

    def test_unsorted_milestones_are_sorted(self):
        schedule = MultiStepSchedule(1.0, milestones=(30, 10), decay=0.1)
        assert schedule.learning_rate(20) == pytest.approx(0.1)

    @settings(max_examples=25, deadline=None)
    @given(progress=st.floats(min_value=0, max_value=500, allow_nan=False))
    def test_rate_never_increases_with_progress(self, progress):
        schedule = MultiStepSchedule(0.05, milestones=(200, 250), decay=0.1)
        assert schedule.learning_rate(progress + 10) <= schedule.learning_rate(progress)


class TestPolynomial:
    def test_linear_decay_to_final(self):
        schedule = PolynomialDecaySchedule(1.0, total=100, final_learning_rate=0.0)
        assert schedule.learning_rate(0) == 1.0
        assert schedule.learning_rate(50) == pytest.approx(0.5)
        assert schedule.learning_rate(100) == pytest.approx(0.0)
        assert schedule.learning_rate(200) == pytest.approx(0.0)

    def test_invalid_final_rate(self):
        with pytest.raises(ValueError):
            PolynomialDecaySchedule(0.1, total=10, final_learning_rate=0.2)


class TestWarmup:
    def test_ramps_linearly_then_follows_wrapped(self):
        schedule = WarmupSchedule(ConstantSchedule(0.1), warmup=10)
        assert schedule.learning_rate(0) == pytest.approx(0.0)
        assert schedule.learning_rate(5) == pytest.approx(0.05)
        assert schedule.learning_rate(10) == pytest.approx(0.1)
        assert schedule.learning_rate(50) == pytest.approx(0.1)

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            WarmupSchedule(ConstantSchedule(0.1), warmup=0)
