"""Tests for the SGD optimizer family."""

import numpy as np
import pytest

from repro.optim.sgd import SGD
from repro.optim.staleness_aware import StalenessAwareSGD


def make_weights():
    return {"w": np.array([1.0, 2.0]), "b": np.array([0.5])}


class TestPlainSgd:
    def test_single_step(self):
        weights = make_weights()
        SGD(learning_rate=0.1).step(weights, {"w": np.array([1.0, 1.0])})
        assert np.allclose(weights["w"], [0.9, 1.9])
        assert np.allclose(weights["b"], [0.5])

    def test_scale_factor_applied(self):
        weights = make_weights()
        SGD(learning_rate=0.1).step(weights, {"w": np.array([1.0, 1.0])}, scale=0.5)
        assert np.allclose(weights["w"], [0.95, 1.95])

    def test_weight_decay_adds_l2_pull(self):
        weights = {"w": np.array([10.0])}
        SGD(learning_rate=0.1, weight_decay=0.1).step(weights, {"w": np.array([0.0])})
        assert np.allclose(weights["w"], [10.0 - 0.1 * 1.0])

    def test_momentum_accumulates_velocity(self):
        weights = {"w": np.array([0.0])}
        optimizer = SGD(learning_rate=1.0, momentum=0.9)
        optimizer.step(weights, {"w": np.array([1.0])})
        assert np.allclose(weights["w"], [-1.0])
        optimizer.step(weights, {"w": np.array([1.0])})
        # velocity = 0.9 * 1 + 1 = 1.9
        assert np.allclose(weights["w"], [-1.0 - 1.9])

    def test_nesterov_differs_from_heavy_ball(self):
        heavy, nesterov = {"w": np.array([0.0])}, {"w": np.array([0.0])}
        heavy_opt = SGD(learning_rate=1.0, momentum=0.9)
        nesterov_opt = SGD(learning_rate=1.0, momentum=0.9, nesterov=True)
        for _ in range(2):
            heavy_opt.step(heavy, {"w": np.array([1.0])})
            nesterov_opt.step(nesterov, {"w": np.array([1.0])})
        assert not np.allclose(heavy["w"], nesterov["w"])

    def test_step_count_and_lr_property(self):
        optimizer = SGD(learning_rate=0.1)
        weights = make_weights()
        optimizer.step(weights, {"w": np.zeros(2)})
        assert optimizer.step_count == 1
        optimizer.learning_rate = 0.01
        assert optimizer.learning_rate == 0.01
        with pytest.raises(ValueError):
            optimizer.learning_rate = 0.0

    def test_unknown_gradient_key_rejected(self):
        with pytest.raises(KeyError):
            SGD(0.1).step(make_weights(), {"missing": np.zeros(1)})

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SGD(0.1).step(make_weights(), {"w": np.zeros(5)})

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            SGD(0.0)
        with pytest.raises(ValueError):
            SGD(0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(0.1, weight_decay=-1)
        with pytest.raises(ValueError):
            SGD(0.1, nesterov=True)

    def test_state_dict_round_trip(self):
        weights = make_weights()
        optimizer = SGD(learning_rate=0.5, momentum=0.9)
        optimizer.step(weights, {"w": np.ones(2)})
        restored = SGD(learning_rate=0.5, momentum=0.9)
        restored.load_state_dict(optimizer.state_dict())
        weights_a, weights_b = make_weights(), make_weights()
        optimizer.step(weights_a, {"w": np.ones(2)})
        restored.step(weights_b, {"w": np.ones(2)})
        assert np.allclose(weights_a["w"], weights_b["w"])

    def test_gradient_descent_converges_on_quadratic(self):
        weights = {"x": np.array([5.0])}
        optimizer = SGD(learning_rate=0.1)
        for _ in range(200):
            optimizer.step(weights, {"x": 2 * weights["x"]})
        assert abs(weights["x"][0]) < 1e-6


class TestStalenessAwareSgd:
    def test_zero_alpha_matches_plain_sgd(self):
        plain, aware = make_weights(), make_weights()
        SGD(learning_rate=0.1).step(plain, {"w": np.ones(2)})
        optimizer = StalenessAwareSGD(learning_rate=0.1, alpha=0.0)
        optimizer.set_staleness(10)
        optimizer.step(aware, {"w": np.ones(2)})
        assert np.allclose(plain["w"], aware["w"])

    def test_stale_updates_are_damped(self):
        fresh, stale = make_weights(), make_weights()
        optimizer = StalenessAwareSGD(learning_rate=0.1, alpha=1.0)
        optimizer.set_staleness(0)
        optimizer.step(fresh, {"w": np.ones(2)})
        optimizer.set_staleness(4)
        optimizer.step(stale, {"w": np.ones(2)})
        fresh_step = 1.0 - fresh["w"][0]
        stale_step = 1.0 - stale["w"][0]
        assert stale_step == pytest.approx(fresh_step / 5)

    def test_staleness_resets_after_step(self):
        optimizer = StalenessAwareSGD(learning_rate=0.1, alpha=1.0)
        optimizer.set_staleness(9)
        weights = make_weights()
        optimizer.step(weights, {"w": np.ones(2)})
        assert optimizer.staleness_scale(0) == 1.0
        before = weights["w"].copy()
        optimizer.step(weights, {"w": np.ones(2)})
        assert np.allclose(before - weights["w"], 0.1)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            StalenessAwareSGD(0.1, alpha=-1)
        optimizer = StalenessAwareSGD(0.1)
        with pytest.raises(ValueError):
            optimizer.set_staleness(-1)
