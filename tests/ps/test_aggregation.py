"""Tests for the server-side aggregators (repro.ps.aggregation).

Covers the aggregator registry and spec parsing, the combination math of
every aggregator, and the buffered window path through the parameter
server: staging, the full-window flush, the end-of-run tail flush, the
dead-worker discard, and the bit-for-bit equivalence of the ``mean``
fast path with an aggregator-less server.
"""

import numpy as np
import pytest

from repro.core.factory import make_policy
from repro.optim.sgd import SGD
from repro.ps.aggregation import (
    ClipAggregator,
    GeometricMedianAggregator,
    MeanAggregator,
    MedianAggregator,
    TrimmedMeanAggregator,
    available_aggregators,
    make_aggregator,
    parse_aggregation_spec,
    register_aggregator,
    validate_aggregation_spec,
)
from repro.ps.messages import PushRequest
from repro.ps.server import ParameterServer
from repro.ps.sharding import ShardedKeyValueStore


def _combine(aggregator, rows):
    stacked = np.asarray(rows, dtype=np.float64)
    return aggregator.combine(stacked, np.empty(stacked.shape[1]))


# ----------------------------------------------------------------------
# Registry and spec parsing
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_aggregators_registered(self):
        assert available_aggregators() == (
            "clip",
            "geomed",
            "mean",
            "median",
            "trimmed_mean",
        )

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate aggregator"):
            register_aggregator(MeanAggregator)

    def test_parse_bare_name(self):
        assert parse_aggregation_spec("mean") == ("mean", {})

    def test_parse_positional_value(self):
        assert parse_aggregation_spec("trimmed_mean:1") == ("trimmed_mean", {"k": 1.0})
        assert parse_aggregation_spec("clip:0.5") == ("clip", {"tau": 0.5})

    def test_parse_keyword_params(self):
        name, params = parse_aggregation_spec("geomed:max_iters=4,tol=0.001")
        assert name == "geomed"
        assert params == {"max_iters": 4.0, "tol": 0.001}

    def test_unknown_aggregator_lists_available(self):
        with pytest.raises(ValueError, match="trimmed_mean"):
            parse_aggregation_spec("krum")

    def test_positional_on_positionless_aggregator_rejected(self):
        with pytest.raises(ValueError, match="no positional"):
            parse_aggregation_spec("median:3")

    def test_non_numeric_parameter_rejected(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_aggregation_spec("trimmed_mean:k=lots")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ValueError, match="duplicate aggregator parameter"):
            parse_aggregation_spec("trimmed_mean:1,k=2")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="invalid parameters"):
            make_aggregator("clip:sigma=1")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_aggregation_spec("")

    def test_make_aggregator_builds_configured_instance(self):
        aggregator = make_aggregator("trimmed_mean:2")
        assert isinstance(aggregator, TrimmedMeanAggregator)
        assert aggregator.k == 2

    def test_out_of_range_parameters_rejected(self):
        with pytest.raises(ValueError, match="trim depth"):
            make_aggregator("trimmed_mean:-1")
        with pytest.raises(ValueError, match="trim depth"):
            make_aggregator("trimmed_mean:0.5")
        with pytest.raises(ValueError, match="tau"):
            make_aggregator("clip:0")
        with pytest.raises(ValueError, match="max_iters"):
            make_aggregator("geomed:0")

    def test_only_mean_is_unbuffered(self):
        for name in available_aggregators():
            aggregator = make_aggregator(name)
            assert aggregator.buffered == (name != "mean")


# ----------------------------------------------------------------------
# Combination math
# ----------------------------------------------------------------------
class TestMean:
    def test_is_the_arithmetic_mean(self):
        out = _combine(MeanAggregator(), [[1.0, 4.0], [3.0, 0.0]])
        np.testing.assert_array_equal(out, [2.0, 2.0])


class TestTrimmedMean:
    def test_drops_the_extremes_per_coordinate(self):
        rows = [[0.0, 100.0], [1.0, 2.0], [2.0, 3.0], [3.0, 4.0], [-50.0, 1.0]]
        out = _combine(TrimmedMeanAggregator(k=1), rows)
        # Column 0 trims -50 and 3, column 1 trims 1 and 100.
        np.testing.assert_array_equal(out, [1.0, 3.0])

    def test_tolerates_one_byzantine_row(self):
        honest = np.ones((4, 3))
        rows = np.vstack([honest, [[1e9, -1e9, 1e9]]])
        out = _combine(TrimmedMeanAggregator(k=1), rows)
        np.testing.assert_array_equal(out, [1.0, 1.0, 1.0])

    def test_trim_depth_clamped_for_small_windows(self):
        # Two survivors with k=3: the clamp degenerates to the plain mean.
        out = _combine(TrimmedMeanAggregator(k=3), [[0.0], [4.0]])
        np.testing.assert_array_equal(out, [2.0])

    def test_k_zero_is_the_mean(self):
        rows = np.random.default_rng(0).normal(size=(5, 7))
        np.testing.assert_array_equal(
            _combine(TrimmedMeanAggregator(k=0), rows),
            _combine(MeanAggregator(), rows),
        )


class TestMedian:
    def test_coordinate_wise_median(self):
        rows = [[1.0, 9.0], [2.0, -7.0], [300.0, 0.0]]
        np.testing.assert_array_equal(_combine(MedianAggregator(), rows), [2.0, 0.0])


class TestGeometricMedian:
    def test_resists_one_far_outlier(self):
        rng = np.random.default_rng(1)
        honest = rng.normal(size=(6, 8)) * 0.01 + 1.0
        rows = np.vstack([honest, np.full((1, 8), 1e6)])
        out = _combine(GeometricMedianAggregator(max_iters=32), rows)
        # The mean is dragged ~1e5 away; the geometric median stays put.
        assert np.all(np.abs(out - 1.0) < 1.0)

    def test_two_points_reduce_to_the_mean(self):
        rows = [[0.0, 0.0], [2.0, 4.0]]
        np.testing.assert_array_equal(
            _combine(GeometricMedianAggregator(), rows), [1.0, 2.0]
        )

    def test_does_not_mutate_the_stacked_input(self):
        stacked = np.random.default_rng(2).normal(size=(5, 4))
        before = stacked.copy()
        GeometricMedianAggregator().combine(stacked, np.empty(4))
        np.testing.assert_array_equal(stacked, before)


class TestClip:
    def test_oversized_gradients_rescaled_to_tau(self):
        big = np.array([30.0, 40.0])  # norm 50
        out = _combine(ClipAggregator(tau=5.0), [big])
        np.testing.assert_allclose(out, [3.0, 4.0])  # norm 5, direction kept

    def test_small_gradients_pass_through_as_mean(self):
        rows = [[0.1, 0.2], [0.3, 0.0]]
        np.testing.assert_allclose(_combine(ClipAggregator(tau=10.0), rows), [0.2, 0.1])

    def test_bounds_a_noise_blowup(self):
        honest = np.ones((4, 2)) * 0.1
        rows = np.vstack([honest, [[1e8, -1e8]]])
        out = _combine(ClipAggregator(tau=1.0), rows)
        assert np.all(np.abs(out) < 1.0)


# ----------------------------------------------------------------------
# The buffered window path through the parameter server
# ----------------------------------------------------------------------
def _make_server(aggregator=None, num_workers=3, num_shards=2):
    rng = np.random.default_rng(0)
    weights = {
        "layer1.weight": rng.normal(size=(6, 4)),
        "layer1.bias": rng.normal(size=4),
        "layer2.weight": rng.normal(size=(4, 3)),
    }
    store = ShardedKeyValueStore(weights, num_shards=num_shards)
    server = ParameterServer(
        store, SGD(0.1), make_policy("asp"), aggregator=aggregator
    )
    for index in range(num_workers):
        server.register_worker(f"worker-{index}")
    return server, store


def _flat_push(store, worker_id, seed, base_version=0):
    rng = np.random.default_rng(seed)
    flat = {
        shard: rng.normal(size=sum(segment.size for segment in layout))
        for shard, layout in store.flat_layouts
    }
    snapshot = store.weights_snapshot()
    return PushRequest(
        worker_id=worker_id,
        gradients={name: np.zeros_like(value) for name, value in snapshot.items()},
        base_version=base_version,
        timestamp=0.0,
        flat_gradients=flat,
    )


class TestBufferedWindow:
    def test_pushes_stage_until_the_window_fills(self):
        server, store = _make_server(make_aggregator("trimmed_mean:1"))
        before = store.weights_snapshot()
        server.handle_push(_flat_push(store, "worker-0", seed=1))
        server.handle_push(_flat_push(store, "worker-1", seed=2))
        for name, value in store.weights_snapshot().items():
            np.testing.assert_array_equal(value, before[name])
        assert store.version == 0

        server.handle_push(_flat_push(store, "worker-2", seed=3))
        assert store.version == 1
        assert any(
            not np.array_equal(before[name], value)
            for name, value in store.weights_snapshot().items()
        )
        assert server.statistics()["aggregation"] == {
            "name": "trimmed_mean",
            "buffered": True,
            "windows_applied": 1,
        }

    def test_lapping_worker_flushes_the_partial_window(self):
        server, store = _make_server(make_aggregator("median"))
        server.handle_push(_flat_push(store, "worker-0", seed=1))
        # The same worker pushing again before the window fills must not
        # overwrite its first contribution: the partial window flushes.
        server.handle_push(_flat_push(store, "worker-0", seed=2))
        assert store.version == 1

    def test_flush_staged_applies_the_tail(self):
        server, store = _make_server(make_aggregator("median"))
        server.handle_push(_flat_push(store, "worker-0", seed=1))
        assert store.version == 0
        server.flush_staged()
        assert store.version == 1
        server.flush_staged()  # idempotent on an empty window
        assert store.version == 1

    def test_discard_staged_drops_a_dead_workers_push(self):
        server, store = _make_server(make_aggregator("median"))
        server.handle_push(_flat_push(store, "worker-0", seed=1))
        assert server.discard_staged("worker-0")
        assert not server.discard_staged("worker-0")  # nothing left
        server.flush_staged()
        assert store.version == 0  # the discarded push never landed

    def test_deregistration_shrinks_the_window_target(self):
        server, store = _make_server(make_aggregator("median"))
        server.handle_push(_flat_push(store, "worker-0", seed=1))
        server.handle_push(_flat_push(store, "worker-1", seed=2))
        # worker-2 dies before contributing: the staged pair now covers
        # every remaining worker and must flush.
        server.deregister_worker("worker-2")
        assert store.version == 1

    def test_buffered_push_requires_full_flat_gradients(self):
        server, store = _make_server(make_aggregator("median"))
        request = _flat_push(store, "worker-0", seed=1)
        partial = PushRequest(
            worker_id=request.worker_id,
            gradients=request.gradients,
            base_version=0,
            timestamp=0.0,
            flat_gradients=dict(list(request.flat_gradients.items())[:1]),
        )
        with pytest.raises(ValueError, match="full"):
            server.handle_push(partial)

    def test_window_is_schedule_order_independent(self):
        # Same three pushes, different arrival orders: identical weights
        # (rows stack in sorted worker-id order before combining).
        results = []
        for order in ([0, 1, 2], [2, 0, 1]):
            server, store = _make_server(make_aggregator("trimmed_mean:1"))
            for index in order:
                server.handle_push(_flat_push(store, f"worker-{index}", seed=index))
            results.append(store.weights_snapshot())
        for name in results[0]:
            np.testing.assert_array_equal(results[0][name], results[1][name])


class TestMeanFastPath:
    def test_mean_aggregator_is_bit_for_bit_the_default_path(self):
        plain, plain_store = _make_server(aggregator=None)
        mean, mean_store = _make_server(make_aggregator("mean"))
        for step, worker in enumerate(["worker-0", "worker-1", "worker-2"] * 2):
            plain.handle_push(_flat_push(plain_store, worker, seed=step, base_version=plain_store.version))
            mean.handle_push(_flat_push(mean_store, worker, seed=step, base_version=mean_store.version))
        assert plain_store.version == mean_store.version
        for name, value in plain_store.weights_snapshot().items():
            np.testing.assert_array_equal(value, mean_store.weights_snapshot()[name])

    def test_mean_server_reports_zero_windows(self):
        server, store = _make_server(make_aggregator("mean"))
        server.handle_push(_flat_push(store, "worker-0", seed=1))
        stats = server.statistics()["aggregation"]
        assert stats == {"name": "mean", "buffered": False, "windows_applied": 0}
        assert store.version == 1  # applied immediately, never staged
