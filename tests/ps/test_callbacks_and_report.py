"""Tests for the callback hooks and the plain-text report helpers."""

import pytest

from repro.experiments.report import _subsample_indices, format_figure_result
from repro.experiments.figures import FigureResult, FigureSeries
from repro.ps.callbacks import Callback, CallbackList, EvaluationRecorder

import numpy as np


class _Recorder(Callback):
    """Callback that records which hooks fired, in order."""

    def __init__(self) -> None:
        self.events: list[str] = []

    def on_training_start(self, context: dict) -> None:
        self.events.append("start")

    def on_push(self, context: dict) -> None:
        self.events.append("push")

    def on_evaluation(self, context: dict) -> None:
        self.events.append("evaluation")

    def on_training_end(self, context: dict) -> None:
        self.events.append("end")


class TestCallbackList:
    def test_dispatches_to_all_callbacks_in_order(self):
        first, second = _Recorder(), _Recorder()
        callbacks = CallbackList([first, second])
        callbacks.on_training_start({})
        callbacks.on_push({})
        callbacks.on_evaluation({})
        callbacks.on_training_end({})
        assert first.events == ["start", "push", "evaluation", "end"]
        assert second.events == first.events

    def test_append_adds_callback(self):
        callbacks = CallbackList()
        recorder = _Recorder()
        callbacks.append(recorder)
        callbacks.on_push({})
        assert recorder.events == ["push"]

    def test_base_callback_hooks_are_no_ops(self):
        callback = Callback()
        callback.on_training_start({})
        callback.on_push({})
        callback.on_evaluation({})
        callback.on_training_end({})


class TestEvaluationRecorder:
    def test_records_series_and_best(self):
        recorder = EvaluationRecorder()
        assert recorder.best_accuracy == 0.0
        recorder.on_evaluation({"time": 1.0, "accuracy": 0.2, "loss": 2.0})
        recorder.on_evaluation({"time": 2.0, "accuracy": 0.5, "loss": 1.0})
        assert recorder.times == [1.0, 2.0]
        assert recorder.accuracies == [0.2, 0.5]
        assert recorder.losses == [2.0, 1.0]
        assert recorder.best_accuracy == 0.5


class TestReportHelpers:
    def test_subsample_indices_cover_ends(self):
        indices = _subsample_indices(100, 8)
        assert indices[0] == 0
        assert indices[-1] == 99
        assert len(indices) <= 8
        assert _subsample_indices(3, 8) == [0, 1, 2]
        assert _subsample_indices(0, 8) == []

    def test_format_figure_result_lists_every_series(self):
        figure = FigureResult(
            figure_id="demo",
            description="demo figure",
            series=[
                FigureSeries(label="one", x=np.array([0.0, 1.0]), y=np.array([0.1, 0.2])),
                FigureSeries(label="two", x=np.array([0.0]), y=np.array([0.3])),
            ],
            metadata={"note": "x"},
        )
        text = format_figure_result(figure)
        assert "demo figure" in text
        assert "one" in text and "two" in text
        assert "note" in text

    def test_figure_result_lookup_errors(self):
        figure = FigureResult(figure_id="demo", description="d")
        assert figure.labels == []
        with pytest.raises(KeyError):
            figure.series_by_label("absent")
