"""Tests for server-state checkpointing."""

import numpy as np
import pytest

from repro.optim.sgd import SGD
from repro.ps.checkpoint import (
    CheckpointMetadata,
    load_checkpoint,
    load_codec_states,
    restore_into,
    save_checkpoint,
)
from repro.ps.compression import TopKCodec, decode_shard
from repro.ps.kvstore import KeyValueStore
from repro.ps.sharding import ShardedKeyValueStore
from repro.utils.serialization import states_allclose

INITIAL_SHAPES = {"layer.weight": (4, 3), "layer.bias": (3,)}


def _initial_arrays(rng):
    return {name: rng.normal(size=shape) for name, shape in INITIAL_SHAPES.items()}


def make_store_and_optimizer(num_shards=1):
    rng = np.random.default_rng(0)
    weights = _initial_arrays(rng)
    buffers = {"bn.running_mean": rng.normal(size=3)}
    if num_shards > 1:
        store = ShardedKeyValueStore(weights, buffers, num_shards=num_shards)
    else:
        store = KeyValueStore(weights, buffers)
    optimizer = SGD(learning_rate=0.05, momentum=0.9)
    # Apply a few updates so velocity and version are non-trivial.
    for _ in range(3):
        store.apply_gradients(
            {"layer.weight": rng.normal(size=(4, 3)), "layer.bias": rng.normal(size=3)}, optimizer
        )
    return store, optimizer


def make_fresh_store(num_shards=1):
    weights = {name: np.zeros(shape) for name, shape in INITIAL_SHAPES.items()}
    buffers = {"bn.running_mean": np.zeros(3)}
    if num_shards > 1:
        return ShardedKeyValueStore(weights, buffers, num_shards=num_shards)
    return KeyValueStore(weights, buffers)


class TestSaveLoad:
    def test_round_trip_restores_everything(self, tmp_path):
        store, optimizer = make_store_and_optimizer()
        path = save_checkpoint(
            tmp_path / "ckpt", store, optimizer, paradigm="dssp", extra={"epoch": 7}
        )
        assert path.suffix == ".npz"

        weights, buffers, velocity, metadata = load_checkpoint(path)
        assert states_allclose(weights, store.weights_snapshot())
        assert states_allclose(buffers, store.buffers_snapshot())
        assert set(velocity) == {"layer.weight", "layer.bias"}
        assert metadata.version == 3
        assert metadata.paradigm == "dssp"
        assert metadata.extra["epoch"] == 7

    def test_restore_into_fresh_store_resumes_identically(self, tmp_path):
        store, optimizer = make_store_and_optimizer()
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer, paradigm="ssp")

        rng = np.random.default_rng(9)
        fresh_store = make_fresh_store()
        fresh_optimizer = SGD(learning_rate=0.05, momentum=0.9)
        metadata = restore_into(path, fresh_store, fresh_optimizer)
        assert metadata.paradigm == "ssp"
        assert fresh_store.version == store.version == 3
        assert states_allclose(fresh_store.weights_snapshot(), store.weights_snapshot())

        # Applying the same gradient to both must give identical results,
        # which requires the momentum velocity to have been restored.
        gradient = {"layer.weight": rng.normal(size=(4, 3)), "layer.bias": rng.normal(size=3)}
        store.apply_gradients(dict(gradient), optimizer)
        fresh_store.apply_gradients(dict(gradient), fresh_optimizer)
        assert states_allclose(fresh_store.weights_snapshot(), store.weights_snapshot())

    def test_save_is_atomic(self, tmp_path, monkeypatch):
        # A crash mid-save must leave the previous checkpoint readable and
        # no temp debris behind — the restartable TCP server relies on it.
        store, optimizer = make_store_and_optimizer()
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer, paradigm="bsp")
        before = path.read_bytes()

        def explode(stream, **arrays):
            stream.write(b"half a checkpoint")
            raise KeyboardInterrupt

        monkeypatch.setattr(np, "savez_compressed", explode)
        with pytest.raises(KeyboardInterrupt):
            save_checkpoint(tmp_path / "ckpt", store, optimizer, paradigm="bsp")
        assert path.read_bytes() == before  # old checkpoint untouched
        assert list(tmp_path.iterdir()) == [path]  # temp file cleaned up
        load_checkpoint(path)  # still a valid archive

    def test_save_leaves_no_temp_files(self, tmp_path):
        store, optimizer = make_store_and_optimizer()
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer)
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer)  # overwrite
        assert list(tmp_path.iterdir()) == [path]

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nothing.npz")

    def test_restore_rejects_mismatched_model(self, tmp_path):
        store, optimizer = make_store_and_optimizer()
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer)
        other = KeyValueStore(initial_weights={"different": np.zeros(2)})
        with pytest.raises(KeyError):
            restore_into(path, other, SGD(0.05))

    def test_metadata_json_round_trip(self):
        metadata = CheckpointMetadata(version=12, paradigm="bsp", extra={"note": "x"})
        restored = CheckpointMetadata.from_json(metadata.to_json())
        assert restored == metadata


class TestShardedCheckpoints:
    """Checkpoints round-trip across store layouts (satellite task)."""

    def test_sharded_round_trip_preserves_shard_versions(self, tmp_path):
        store, optimizer = make_store_and_optimizer(num_shards=2)
        assert store.version == 3
        saved_shard_versions = store.shard_versions
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer, paradigm="dssp")

        fresh_store = make_fresh_store(num_shards=2)
        fresh_optimizer = SGD(learning_rate=0.05, momentum=0.9)
        metadata = restore_into(path, fresh_store, fresh_optimizer)
        assert metadata.version == 3
        assert fresh_store.version == 3
        assert fresh_store.shard_versions == saved_shard_versions
        assert states_allclose(fresh_store.weights_snapshot(), store.weights_snapshot())
        assert states_allclose(fresh_store.buffers_snapshot(), store.buffers_snapshot())

    def test_sharded_restore_resumes_identically(self, tmp_path):
        store, optimizer = make_store_and_optimizer(num_shards=2)
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer)
        fresh_store = make_fresh_store(num_shards=2)
        fresh_optimizer = SGD(learning_rate=0.05, momentum=0.9)
        restore_into(path, fresh_store, fresh_optimizer)

        rng = np.random.default_rng(9)
        gradient = {"layer.weight": rng.normal(size=(4, 3)), "layer.bias": rng.normal(size=3)}
        store.apply_gradients(dict(gradient), optimizer)
        fresh_store.apply_gradients(dict(gradient), fresh_optimizer)
        assert states_allclose(fresh_store.weights_snapshot(), store.weights_snapshot())
        assert fresh_store.version == store.version

    def test_monolithic_checkpoint_loads_into_sharded_store(self, tmp_path):
        store, optimizer = make_store_and_optimizer(num_shards=1)
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer)

        sharded = make_fresh_store(num_shards=2)
        metadata = restore_into(path, sharded, SGD(learning_rate=0.05, momentum=0.9))
        assert metadata.version == 3
        assert sharded.version == 3
        # No per-shard counters in a monolithic checkpoint: every shard falls
        # back to the global version, a safe upper bound.
        assert sharded.shard_versions == [3, 3]
        assert states_allclose(sharded.weights_snapshot(), store.weights_snapshot())
        # The restored state must be resent in full on the next delta pull.
        delta = sharded.pull(known_version=0)
        assert set(delta.weights) == set(sharded.parameter_names)

    def test_sharded_checkpoint_loads_into_monolithic_store(self, tmp_path):
        store, optimizer = make_store_and_optimizer(num_shards=4)
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer)
        mono = make_fresh_store(num_shards=1)
        metadata = restore_into(path, mono, SGD(learning_rate=0.05, momentum=0.9))
        assert metadata.extra["shard_versions"] == store.shard_versions
        assert mono.version == 3
        assert states_allclose(mono.weights_snapshot(), store.weights_snapshot())

    def test_sharded_checkpoint_into_different_shard_count(self, tmp_path):
        store, optimizer = make_store_and_optimizer(num_shards=4)
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer)
        other = make_fresh_store(num_shards=2)
        restore_into(path, other, SGD(learning_rate=0.05, momentum=0.9))
        assert other.version == 3
        assert other.shard_versions == [3, 3]
        assert states_allclose(other.weights_snapshot(), store.weights_snapshot())


class TestCodecStates:
    """Error-feedback residuals ride along in checkpoints (satellite task)."""

    def test_codec_states_round_trip(self, tmp_path):
        store, optimizer = make_store_and_optimizer()
        rng = np.random.default_rng(4)
        codecs = {worker: TopKCodec(density=0.1) for worker in ("w0", "w1")}
        for codec in codecs.values():
            for shard in (0, 1):
                codec.encode(shard, rng.normal(size=50))
        path = save_checkpoint(
            tmp_path / "ckpt", store, optimizer,
            codec_states={w: c.state_dict() for w, c in codecs.items()},
        )

        states = load_codec_states(path)
        assert set(states) == {"w0", "w1"}
        for worker, codec in codecs.items():
            expected = codec.state_dict()
            assert set(states[worker]) == set(expected) == {"0", "1"}
            for key in expected:
                np.testing.assert_array_equal(states[worker][key], expected[key])

    def test_checkpoint_without_codec_states_loads_empty(self, tmp_path):
        store, optimizer = make_store_and_optimizer()
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer)
        assert load_codec_states(path) == {}
        # The codec arrays must not pollute the regular sections either.
        weights, buffers, velocity, _ = load_checkpoint(path)
        assert set(weights) == set(INITIAL_SHAPES)

    def test_separator_in_worker_id_rejected(self, tmp_path):
        store, optimizer = make_store_and_optimizer()
        with pytest.raises(ValueError, match="::"):
            save_checkpoint(
                tmp_path / "ckpt", store, optimizer,
                codec_states={"w::0": {"0": np.zeros(3)}},
            )

    def test_restore_then_continue_matches_uninterrupted(self, tmp_path):
        """A restored codec picks up exactly where the saved one left off."""
        rng = np.random.default_rng(11)
        pushes = [rng.normal(size=80) for _ in range(6)]

        uninterrupted = TopKCodec(density=0.05)
        shipped_expected = [
            decode_shard(uninterrupted.encode(0, g.copy()), out=np.empty(80)).copy()
            for g in pushes
        ]

        # Train for three pushes, checkpoint, "crash", restore, continue.
        store, optimizer = make_store_and_optimizer()
        first_half = TopKCodec(density=0.05)
        shipped = [
            decode_shard(first_half.encode(0, g.copy()), out=np.empty(80)).copy()
            for g in pushes[:3]
        ]
        path = save_checkpoint(
            tmp_path / "ckpt", store, optimizer,
            codec_states={"w0": first_half.state_dict()},
        )
        restored = TopKCodec(density=0.05)
        restored.load_state_dict(load_codec_states(path)["w0"])
        shipped += [
            decode_shard(restored.encode(0, g.copy()), out=np.empty(80)).copy()
            for g in pushes[3:]
        ]
        for step, (got, want) in enumerate(zip(shipped, shipped_expected)):
            np.testing.assert_array_equal(got, want, err_msg=f"push {step}")
