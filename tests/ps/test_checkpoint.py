"""Tests for server-state checkpointing."""

import numpy as np
import pytest

from repro.optim.sgd import SGD
from repro.ps.checkpoint import CheckpointMetadata, load_checkpoint, restore_into, save_checkpoint
from repro.ps.kvstore import KeyValueStore
from repro.utils.serialization import states_allclose


def make_store_and_optimizer():
    rng = np.random.default_rng(0)
    store = KeyValueStore(
        initial_weights={"layer.weight": rng.normal(size=(4, 3)), "layer.bias": rng.normal(size=3)},
        initial_buffers={"bn.running_mean": rng.normal(size=3)},
    )
    optimizer = SGD(learning_rate=0.05, momentum=0.9)
    # Apply a few updates so velocity and version are non-trivial.
    for _ in range(3):
        store.apply_gradients(
            {"layer.weight": rng.normal(size=(4, 3)), "layer.bias": rng.normal(size=3)}, optimizer
        )
    return store, optimizer


class TestSaveLoad:
    def test_round_trip_restores_everything(self, tmp_path):
        store, optimizer = make_store_and_optimizer()
        path = save_checkpoint(
            tmp_path / "ckpt", store, optimizer, paradigm="dssp", extra={"epoch": 7}
        )
        assert path.suffix == ".npz"

        weights, buffers, velocity, metadata = load_checkpoint(path)
        assert states_allclose(weights, store.weights_snapshot())
        assert states_allclose(buffers, store.buffers_snapshot())
        assert set(velocity) == {"layer.weight", "layer.bias"}
        assert metadata.version == 3
        assert metadata.paradigm == "dssp"
        assert metadata.extra["epoch"] == 7

    def test_restore_into_fresh_store_resumes_identically(self, tmp_path):
        store, optimizer = make_store_and_optimizer()
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer, paradigm="ssp")

        rng = np.random.default_rng(9)
        fresh_store = KeyValueStore(
            initial_weights={"layer.weight": np.zeros((4, 3)), "layer.bias": np.zeros(3)},
            initial_buffers={"bn.running_mean": np.zeros(3)},
        )
        fresh_optimizer = SGD(learning_rate=0.05, momentum=0.9)
        metadata = restore_into(path, fresh_store, fresh_optimizer)
        assert metadata.paradigm == "ssp"
        assert states_allclose(fresh_store.weights_snapshot(), store.weights_snapshot())

        # Applying the same gradient to both must give identical results,
        # which requires the momentum velocity to have been restored.
        gradient = {"layer.weight": rng.normal(size=(4, 3)), "layer.bias": rng.normal(size=3)}
        store.apply_gradients(dict(gradient), optimizer)
        fresh_store.apply_gradients(dict(gradient), fresh_optimizer)
        assert states_allclose(fresh_store.weights_snapshot(), store.weights_snapshot())

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nothing.npz")

    def test_restore_rejects_mismatched_model(self, tmp_path):
        store, optimizer = make_store_and_optimizer()
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer)
        other = KeyValueStore(initial_weights={"different": np.zeros(2)})
        with pytest.raises(KeyError):
            restore_into(path, other, SGD(0.05))

    def test_metadata_json_round_trip(self):
        metadata = CheckpointMetadata(version=12, paradigm="bsp", extra={"note": "x"})
        restored = CheckpointMetadata.from_json(metadata.to_json())
        assert restored == metadata
