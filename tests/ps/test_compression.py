"""Tests for the gradient push codecs (repro.ps.compression).

Covers the codec registry and spec parsing, encode/decode round trips for
every scheme, error-feedback accounting, the shared-memory framing, and the
codec-through-server integration: compressed pushes composed with delta
pulls at the version tip must not leak copy-on-write leases.
"""

import numpy as np
import pytest

from repro.core.factory import make_policy
from repro.optim.sgd import SGD
from repro.ps.compression import (
    EncodedShard,
    Fp16Codec,
    GradientCodec,
    Int8Codec,
    NoneCodec,
    SignificanceCodec,
    TopKCodec,
    available_codecs,
    decode_shard,
    frame_capacity,
    make_codec,
    parse_codec_spec,
    read_encoded,
    register_codec,
    validate_codec_spec,
    write_encoded,
)
from repro.ps.messages import PullRequest, PushRequest
from repro.ps.server import ParameterServer
from repro.ps.sharding import ShardedKeyValueStore


def _grad(size: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=size)


# ----------------------------------------------------------------------
# Registry and spec parsing
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_codecs_registered(self):
        assert available_codecs() == ("fp16", "int8", "none", "significance", "topk")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate codec"):
            register_codec(NoneCodec)

    def test_parse_bare_name(self):
        assert parse_codec_spec("none") == ("none", {})

    def test_parse_positional_value(self):
        assert parse_codec_spec("topk:0.05") == ("topk", {"density": 0.05})

    def test_parse_keyword_params(self):
        name, params = parse_codec_spec("int8:chunk=512,seed=3")
        assert name == "int8"
        assert params == {"chunk": 512.0, "seed": 3.0}

    def test_unknown_codec_lists_available(self):
        with pytest.raises(ValueError, match="topk"):
            parse_codec_spec("gzip")

    def test_positional_on_positionless_codec_rejected(self):
        with pytest.raises(ValueError, match="no positional"):
            parse_codec_spec("fp16:0.5")

    def test_non_numeric_parameter_rejected(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_codec_spec("topk:density=lots")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ValueError, match="duplicate codec parameter"):
            parse_codec_spec("topk:0.1,density=0.2")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="invalid parameters"):
            make_codec("topk:sparsity=0.1")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_codec_spec("")

    def test_make_codec_builds_configured_instance(self):
        codec = make_codec("topk:0.02")
        assert isinstance(codec, TopKCodec)
        assert codec.density == 0.02

    def test_out_of_range_parameters_rejected(self):
        with pytest.raises(ValueError, match="density"):
            make_codec("topk:0.0")
        with pytest.raises(ValueError, match="chunk"):
            make_codec("int8:chunk=0")
        with pytest.raises(ValueError, match="threshold"):
            make_codec("significance:0")


# ----------------------------------------------------------------------
# Encode / decode round trips
# ----------------------------------------------------------------------
class TestNoneCodec:
    def test_zero_copy_identity(self):
        grad = _grad(64)
        encoded = NoneCodec().encode(0, grad)
        assert encoded.scheme == "dense"
        assert decode_shard(encoded) is grad  # the very same buffer
        assert encoded.nbytes == grad.nbytes

    def test_decode_into_scratch(self):
        grad = _grad(16)
        out = np.empty(16)
        assert decode_shard(NoneCodec().encode(0, grad), out=out) is out
        np.testing.assert_array_equal(out, grad)


class TestFp16Codec:
    def test_halves_the_wire_bytes(self):
        grad = _grad(128)
        encoded = Fp16Codec().encode(0, grad)
        assert encoded.nbytes == grad.nbytes // 4  # f64 -> f16
        np.testing.assert_allclose(decode_shard(encoded, out=np.empty(128)),
                                   grad, atol=1e-2)


class TestInt8Codec:
    def test_quantization_error_bounded_by_scale(self):
        grad = _grad(1000)
        codec = Int8Codec(chunk=256)
        encoded = codec.encode(0, grad.copy())
        assert encoded.scheme == "qint8"
        codes, scales = encoded.arrays
        assert codes.dtype == np.int8 and scales.size == 4
        decoded = decode_shard(encoded)
        # Stochastic rounding moves each element by at most one code step
        # (the effective chunk is ceil(size / num_chunks) = 250, not 256).
        steps = np.repeat(scales, 250)[: grad.size]
        assert np.all(np.abs(decoded - grad) <= steps + 1e-12)

    def test_reseed_makes_encoding_deterministic(self):
        grad = _grad(500)
        first, second = Int8Codec(chunk=128), Int8Codec(chunk=128)
        first.reseed(np.random.default_rng(7))
        second.reseed(np.random.default_rng(7))
        np.testing.assert_array_equal(
            first.encode(0, grad.copy()).arrays[0],
            second.encode(0, grad.copy()).arrays[0],
        )

    def test_zero_gradient_round_trips_exactly(self):
        encoded = Int8Codec().encode(0, np.zeros(32))
        np.testing.assert_array_equal(decode_shard(encoded), np.zeros(32))


class TestTopKCodec:
    def test_ships_the_largest_magnitudes(self):
        grad = np.zeros(100)
        grad[[3, 50, 97]] = [5.0, -7.0, 2.0]
        encoded = TopKCodec(density=0.03).encode(0, grad)
        indices, values = encoded.arrays
        np.testing.assert_array_equal(indices, [3, 50, 97])
        np.testing.assert_array_equal(values, [5.0, -7.0, 2.0])

    def test_error_feedback_conserves_mass(self):
        # Whatever is not shipped stays in the residual: shipped + residual
        # always equals the running sum of pushed gradients.
        codec = TopKCodec(density=0.1)
        total = np.zeros(200)
        shipped = np.zeros(200)
        for seed in range(5):
            grad = _grad(200, seed=seed)
            total += grad
            shipped += decode_shard(codec.encode(0, grad), out=np.empty(200))
        np.testing.assert_allclose(shipped + codec.state_dict()["0"], total)

    def test_unsent_components_eventually_ship(self):
        codec = TopKCodec(density=0.5)
        grad = np.array([10.0, 1.0])
        first = decode_shard(codec.encode(0, grad.copy()))
        np.testing.assert_array_equal(first, [10.0, 0.0])
        # Pushing zeros lets the held-back component surface.
        second = decode_shard(codec.encode(0, np.zeros(2)))
        np.testing.assert_array_equal(second, [0.0, 1.0])

    def test_residuals_are_per_shard(self):
        codec = TopKCodec(density=0.5)
        codec.encode(0, np.array([1.0, 2.0]))
        codec.encode(1, np.array([3.0, 4.0, 5.0]))
        state = codec.state_dict()
        assert set(state) == {"0", "1"}
        assert state["0"].size == 2 and state["1"].size == 3

    def test_state_round_trip(self):
        codec = TopKCodec(density=0.25)
        for seed in range(3):
            codec.encode(0, _grad(40, seed=seed))
        clone = TopKCodec(density=0.25)
        clone.load_state_dict(codec.state_dict())
        grad = _grad(40, seed=99)
        np.testing.assert_array_equal(
            decode_shard(codec.encode(0, grad.copy()), out=np.empty(40)),
            decode_shard(clone.encode(0, grad.copy()), out=np.empty(40)),
        )

    def test_stateless_codec_rejects_state(self):
        with pytest.raises(ValueError, match="no state"):
            NoneCodec().load_state_dict({"0": np.zeros(4)})
        NoneCodec().load_state_dict({})  # empty state is fine


class TestSignificanceCodec:
    def test_ships_only_significant_components(self):
        grad = np.ones(100) * 0.1
        grad[7] = 50.0
        encoded = SignificanceCodec(threshold=2.0).encode(0, grad)
        indices, values = encoded.arrays
        np.testing.assert_array_equal(indices, [7])
        np.testing.assert_array_equal(values, [50.0])

    def test_zero_gradient_ships_nothing(self):
        encoded = SignificanceCodec().encode(0, np.zeros(64))
        assert encoded.arrays[0].size == 0
        np.testing.assert_array_equal(decode_shard(encoded), np.zeros(64))

    def test_insignificant_mass_accumulates_until_significant(self):
        codec = SignificanceCodec(threshold=1.5)
        grad = np.ones(10)  # uniform: |g| == rms, nothing significant
        assert codec.encode(0, grad.copy()).arrays[0].size == 0
        # The residual keeps growing; a later skewed push ships the total.
        grad2 = np.zeros(10)
        grad2[3] = 30.0
        encoded = codec.encode(0, grad2)
        indices, values = encoded.arrays
        np.testing.assert_array_equal(indices, [3])
        np.testing.assert_array_equal(values, [31.0])  # 1.0 residual + 30.0


# ----------------------------------------------------------------------
# Capacity bounds and shared-memory framing
# ----------------------------------------------------------------------
ALL_CODECS = [
    NoneCodec(),
    Fp16Codec(),
    Int8Codec(chunk=64),
    TopKCodec(density=0.1),
    SignificanceCodec(threshold=0.5),
]


class TestFraming:
    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
    @pytest.mark.parametrize("size", [1, 63, 1000])
    def test_frame_round_trip_within_capacity(self, codec, size):
        grad = _grad(size, seed=size)
        encoded = codec.encode(2, grad.copy())
        capacity = codec.max_encoded_nbytes(size)
        region = np.zeros(capacity, dtype=np.uint8)
        framed = write_encoded(encoded, region)
        assert framed <= capacity
        decoded = read_encoded(region, shard=2)
        assert decoded.shard == 2
        assert decoded.scheme == encoded.scheme
        assert not any(array.flags.writeable for array in decoded.arrays)
        np.testing.assert_array_equal(
            decode_shard(decoded, out=np.empty(size)),
            decode_shard(encoded, out=np.empty(size)),
        )

    def test_capacity_is_8_byte_aligned(self):
        for payload in [(1,), (7, 9), (64, 3, 5)]:
            assert frame_capacity(payload) % 8 == 0

    def test_corrupt_frame_rejected(self):
        region = np.full(64, 0xFF, dtype=np.uint8)
        with pytest.raises(ValueError, match="corrupt"):
            read_encoded(region, shard=0)

    def test_wire_fractions_in_range(self):
        for codec in ALL_CODECS:
            assert 0.0 < codec.wire_fraction() <= 1.0


# ----------------------------------------------------------------------
# Server integration: compressed push + delta pull at the version tip
# ----------------------------------------------------------------------
def _make_server(num_shards=2):
    rng = np.random.default_rng(0)
    weights = {
        "layer1.weight": rng.normal(size=(8, 4)),
        "layer1.bias": rng.normal(size=4),
        "layer2.weight": rng.normal(size=(4, 3)),
    }
    store = ShardedKeyValueStore(weights, num_shards=num_shards)
    server = ParameterServer(store, SGD(0.1), make_policy("asp"), gradient_scale=1.0)
    server.register_worker("w0")
    return server, store


def _named_zero_gradients(store):
    """Full named-gradient mapping (the flat path validates names/shapes)."""
    snapshot = store.weights_snapshot()
    return {name: np.zeros_like(value) for name, value in snapshot.items()}


def _encoded_push(store, codec, seed=0):
    """Encode one synthetic packed gradient per shard."""
    rng = np.random.default_rng(seed)
    payloads = []
    for shard, layout in store.flat_layouts:
        total = sum(segment.size for segment in layout)
        payloads.append(codec.encode(shard, rng.normal(size=total)))
    return tuple(payloads)


class TestServerDecode:
    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
    def test_compressed_push_updates_weights(self, codec):
        server, store = _make_server()
        before = store.weights_snapshot()
        request = PushRequest(
            worker_id="w0",
            gradients=_named_zero_gradients(store),
            base_version=0,
            timestamp=0.0,
            encoded_gradients=_encoded_push(store, codec, seed=3),
            codec=codec.name,
        )
        response = server.handle_push(request)
        assert response.new_version == 1
        after = store.weights_snapshot()
        changed = any(
            not np.array_equal(before[name], after[name]) for name in before
        )
        # A significance codec may legitimately ship nothing; every other
        # codec must move the weights.
        if codec.name != "significance":
            assert changed

    def test_sparse_push_then_delta_pull_at_tip_leaks_no_lease(self):
        server, store = _make_server()
        codec = TopKCodec(density=0.05)
        for step in range(3):
            server.handle_push(PushRequest(
                worker_id="w0", gradients=_named_zero_gradients(store), base_version=step, timestamp=0.0,
                encoded_gradients=_encoded_push(store, codec, seed=step),
                codec=codec.name,
            ))
        # Delta pull at the exact version tip: nothing changed since, the
        # reply is empty and must take no copy-on-write lease at all.
        reply = server.handle_pull(PullRequest("w0", known_version=store.version))
        assert reply.is_delta and not reply.weights
        assert reply.transfer_nbytes() == 0
        assert not any(shard.flat.leased for shard in store._shards)

        # A stale pull does lease; releasing it must drop every lease even
        # when interleaved with further sparse pushes.
        stale = server.handle_pull(PullRequest("w0", known_version=0))
        assert any(shard.flat.leased for shard in store._shards)
        server.handle_push(PushRequest(
            worker_id="w0", gradients=_named_zero_gradients(store), base_version=3, timestamp=0.0,
            encoded_gradients=_encoded_push(store, codec, seed=9),
            codec=codec.name,
        ))
        stale.release()
        stale.release()  # idempotent
        assert not any(shard.flat.leased for shard in store._shards)

    def test_none_codec_push_bit_for_bit_matches_flat_push(self):
        server_a, store_a = _make_server()
        server_b, store_b = _make_server()
        rng = np.random.default_rng(5)
        flat = {
            shard: rng.normal(size=sum(segment.size for segment in layout))
            for shard, layout in store_a.flat_layouts
        }
        server_a.handle_push(PushRequest(
            worker_id="w0", gradients=_named_zero_gradients(store_a),
            base_version=0, timestamp=0.0,
            flat_gradients={shard: buf.copy() for shard, buf in flat.items()},
        ))
        server_b.handle_push(PushRequest(
            worker_id="w0", gradients=_named_zero_gradients(store_b),
            base_version=0, timestamp=0.0,
            encoded_gradients=tuple(
                NoneCodec().encode(shard, buf.copy()) for shard, buf in flat.items()
            ),
            codec="none",
        ))
        for name in store_a.parameter_names:
            np.testing.assert_array_equal(
                store_a.weights_snapshot()[name], store_b.weights_snapshot()[name]
            )
