"""Tests for fault injection (repro.ps.faults).

Covers fault-plan parsing and validation, the per-spec corruption and
slow-phase windows, the corruption math of every mode, the injector's
pooled scratch and event log, and the satellite determinism guarantee:
two runs of the same chaos plan produce identical fault event logs.
"""

import numpy as np
import pytest

from repro.api import ClusterConfig, ExperimentSpec, run_experiment
from repro.ps.faults import (
    CORRUPTION_MODES,
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    parse_fault_specs,
    validate_fault_specs,
)
from repro.utils.rng import RngStream

WORKERS = ["worker-0", "worker-1", "worker-2"]


# ----------------------------------------------------------------------
# Parsing and validation
# ----------------------------------------------------------------------
class TestParsing:
    def test_index_and_id_both_resolve(self):
        plan = parse_fault_specs(
            [
                {"worker": 1, "kind": "crash", "after_clock": 3},
                {"worker": "worker-2", "kind": "byzantine", "mode": "sign_flip"},
            ],
            WORKERS,
        )
        assert plan.for_worker("worker-1").kind == "crash"
        assert plan.for_worker("worker-2").mode == "sign_flip"
        assert plan.for_worker("worker-0") is None

    def test_empty_plan_is_falsy(self):
        plan = parse_fault_specs([], WORKERS)
        assert not plan and len(plan) == 0
        assert not plan.corrupts_anyone()

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            parse_fault_specs([{"worker": 9, "kind": "crash"}], WORKERS)

    def test_unknown_worker_id_rejected(self):
        with pytest.raises(ValueError, match="not in the cluster"):
            parse_fault_specs([{"worker": "worker-9", "kind": "crash"}], WORKERS)

    def test_unknown_kind_lists_available(self):
        with pytest.raises(ValueError, match="crash, byzantine"):
            parse_fault_specs([{"worker": 0, "kind": "meteor"}], WORKERS)

    def test_keys_foreign_to_the_kind_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            parse_fault_specs(
                [{"worker": 0, "kind": "crash", "mode": "sign_flip"}], WORKERS
            )

    def test_one_fault_per_worker(self):
        with pytest.raises(ValueError, match="more than one fault"):
            parse_fault_specs(
                [
                    {"worker": 0, "kind": "crash"},
                    {"worker": "worker-0", "kind": "flaky"},
                ],
                WORKERS,
            )

    def test_corruption_requires_a_mode(self):
        with pytest.raises(ValueError, match="corruption mode"):
            parse_fault_specs([{"worker": 0, "kind": "byzantine"}], WORKERS)
        with pytest.raises(ValueError, match="corruption mode"):
            parse_fault_specs(
                [{"worker": 0, "kind": "corrupt", "mode": "gamma_ray"}], WORKERS
            )

    def test_until_clock_must_follow_after_clock(self):
        with pytest.raises(ValueError, match="until_clock"):
            parse_fault_specs(
                [
                    {
                        "worker": 0,
                        "kind": "corrupt",
                        "mode": "noise",
                        "after_clock": 5,
                        "until_clock": 5,
                    }
                ],
                WORKERS,
            )

    def test_numeric_bounds(self):
        with pytest.raises(ValueError, match="after_clock"):
            parse_fault_specs([{"worker": 0, "kind": "crash", "after_clock": -1}], WORKERS)
        with pytest.raises(ValueError, match="scale"):
            parse_fault_specs(
                [{"worker": 0, "kind": "byzantine", "mode": "noise", "scale": 0}],
                WORKERS,
            )
        with pytest.raises(ValueError, match="rejoin_after"):
            parse_fault_specs(
                [{"worker": 0, "kind": "crash", "rejoin_after": 0}], WORKERS
            )
        with pytest.raises(ValueError, match="delay"):
            parse_fault_specs(
                [{"worker": 0, "kind": "flaky", "delay": -0.1}], WORKERS
            )

    def test_faults_must_be_a_list_of_mappings(self):
        with pytest.raises(ValueError, match="list"):
            parse_fault_specs({"worker": 0, "kind": "crash"}, WORKERS)
        with pytest.raises(ValueError, match="mapping"):
            parse_fault_specs(["crash"], WORKERS)
        with pytest.raises(ValueError, match="'worker' and 'kind'"):
            parse_fault_specs([{"kind": "crash"}], WORKERS)

    def test_to_dicts_round_trips_through_parse(self):
        entries = [
            {"worker": 0, "kind": "crash", "after_clock": 4, "rejoin_after": 2},
            {"worker": 1, "kind": "corrupt", "mode": "noise", "scale": 2.0,
             "after_clock": 1, "until_clock": 9},
            {"worker": 2, "kind": "flaky", "scale": 3.0, "period": 2},
        ]
        plan = parse_fault_specs(entries, WORKERS)
        again = parse_fault_specs(plan.to_dicts(), WORKERS)
        assert again.specs == plan.specs

    def test_validate_is_the_raising_form(self):
        validate_fault_specs([{"worker": 0, "kind": "crash"}], WORKERS)
        with pytest.raises(ValueError):
            validate_fault_specs([{"worker": 0, "kind": "?"}], WORKERS)


class TestSpecWindows:
    def test_byzantine_corrupts_from_after_clock_forever(self):
        spec = FaultSpec(worker="w", kind="byzantine", mode="sign_flip", after_clock=3)
        assert [spec.corrupts(clock) for clock in range(6)] == [
            False, False, False, True, True, True,
        ]

    def test_corrupt_stops_at_until_clock(self):
        spec = FaultSpec(
            worker="w", kind="corrupt", mode="noise", after_clock=2, until_clock=4
        )
        assert [spec.corrupts(clock) for clock in range(6)] == [
            False, False, True, True, False, False,
        ]

    def test_crash_and_flaky_never_corrupt(self):
        assert not FaultSpec(worker="w", kind="crash").corrupts(0)
        assert not FaultSpec(worker="w", kind="flaky").corrupts(0)

    def test_flaky_alternates_period_slow_period_normal(self):
        spec = FaultSpec(worker="w", kind="flaky", after_clock=2, period=2)
        assert [spec.slow(clock) for clock in range(8)] == [
            False, False, True, True, False, False, True, True,
        ]

    def test_only_flaky_is_slow(self):
        assert not FaultSpec(worker="w", kind="crash").slow(5)

    def test_plan_lookup_helpers(self):
        plan = parse_fault_specs(
            [
                {"worker": 0, "kind": "crash", "after_clock": 7, "rejoin_after": 3},
                {"worker": 1, "kind": "crash", "after_clock": 2},
                {"worker": 2, "kind": "flaky"},
            ],
            WORKERS,
        )
        assert plan.crash_at() == {"worker-0": 7, "worker-1": 2}
        assert plan.rejoin_after() == {"worker-0": 3}
        assert plan.flaky_for("worker-2").kind == "flaky"
        assert plan.flaky_for("worker-0") is None
        assert not plan.corrupts_anyone()


# ----------------------------------------------------------------------
# Corruption math and the injector
# ----------------------------------------------------------------------
def _injector(entries, seed=0):
    plan = parse_fault_specs(entries, WORKERS)
    return FaultInjector(plan, RngStream(seed))


class TestCorruption:
    def test_sign_flip_negates_and_scales(self):
        injector = _injector(
            [{"worker": 0, "kind": "byzantine", "mode": "sign_flip", "scale": 2.0}]
        )
        grad = np.arange(8.0)
        out = injector.corrupt_push("worker-0", {0: grad})
        np.testing.assert_array_equal(out[0], -2.0 * grad)
        np.testing.assert_array_equal(grad, np.arange(8.0))  # input untouched

    def test_noise_perturbs_at_the_gradient_scale(self):
        injector = _injector(
            [{"worker": 0, "kind": "byzantine", "mode": "noise", "scale": 1.0}]
        )
        grad = np.ones(1000)
        out = injector.corrupt_push("worker-0", {0: grad})[0]
        assert not np.array_equal(out, grad)
        # Noise is scaled by the gradient RMS (1.0 here): the perturbation
        # is order-1, not order-1e6.
        assert 0.5 < np.std(out - grad) < 2.0

    def test_bit_flip_touches_few_elements(self):
        injector = _injector(
            [{"worker": 0, "kind": "byzantine", "mode": "bit_flip"}]
        )
        grad = np.ones(200)
        out = injector.corrupt_push("worker-0", {0: grad})[0]
        changed = np.count_nonzero(out != grad)
        assert 1 <= changed <= 2  # ~1% of 200

    def test_nothing_before_after_clock_and_pooled_scratch_after(self):
        injector = _injector(
            [{"worker": 0, "kind": "byzantine", "mode": "sign_flip", "after_clock": 2}]
        )
        grad = np.ones(16)
        assert injector.corrupt_push("worker-0", {0: grad}) is None
        assert injector.corrupt_push("worker-0", {0: grad}) is None
        first = injector.corrupt_push("worker-0", {0: grad})
        second = injector.corrupt_push("worker-0", {0: grad})
        assert first is not None
        assert first[0] is second[0]  # pooled scratch, reused across pushes
        assert injector.worker_clock("worker-0") == 4

    def test_unfaulted_workers_pass_through(self):
        injector = _injector(
            [{"worker": 0, "kind": "byzantine", "mode": "sign_flip"}]
        )
        assert injector.corrupt_push("worker-1", {0: np.ones(4)}) is None
        assert injector.events == []

    def test_events_record_clock_and_mode(self):
        injector = _injector(
            [{"worker": 0, "kind": "corrupt", "mode": "noise", "until_clock": 1}]
        )
        injector.corrupt_push("worker-0", {0: np.ones(4)})
        injector.corrupt_push("worker-0", {0: np.ones(4)})  # past the window
        assert injector.events == [
            {
                "kind": "corrupted_push",
                "worker": "worker-0",
                "clock": 0,
                "mode": "noise",
                "fault": "corrupt",
            }
        ]

    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_same_seed_same_corruption(self, mode):
        grad = np.random.default_rng(3).normal(size=64)
        outs = []
        for _ in range(2):
            injector = _injector(
                [{"worker": 0, "kind": "byzantine", "mode": mode}], seed=11
            )
            outs.append(injector.corrupt_push("worker-0", {0: grad.copy()})[0].copy())
        np.testing.assert_array_equal(outs[0], outs[1])


# ----------------------------------------------------------------------
# End-to-end determinism: identical fault event logs across runs
# ----------------------------------------------------------------------
CHAOS_SPEC = ExperimentSpec(
    name="chaos-determinism",
    workload="mlp",
    scale="tiny",
    cluster=ClusterConfig(num_workers=3),
    paradigm="ssp",
    paradigm_kwargs={"staleness": 2},
    aggregation="trimmed_mean:1",
    faults=(
        {"worker": 0, "kind": "byzantine", "mode": "noise", "after_clock": 1},
        {"worker": 2, "kind": "crash", "after_clock": 4},
    ),
    seed=13,
)


class TestDeterminism:
    def test_two_simulated_runs_identical_event_logs(self):
        first = run_experiment(CHAOS_SPEC, "simulated")
        second = run_experiment(CHAOS_SPEC, "simulated")
        assert first.events == second.events
        assert any(event["kind"] == "crash" for event in first.events)
        assert any(event["kind"] == "corrupted_push" for event in first.events)
        np.testing.assert_array_equal(first.accuracies, second.accuracies)

    def test_events_survive_result_serialization(self):
        result = run_experiment(CHAOS_SPEC, "simulated")
        data = result.to_dict()
        assert data["events"] == result.events
        import json

        json.dumps(data["events"])  # JSON-safe

    def test_kinds_constant_is_exhaustive(self):
        assert FAULT_KINDS == ("crash", "byzantine", "corrupt", "flaky")

    def test_flaky_worker_costs_virtual_time_in_the_simulator(self):
        clean = run_experiment(CHAOS_SPEC.replace(faults=()), "simulated")
        flaky = run_experiment(
            CHAOS_SPEC.replace(
                faults=({"worker": 0, "kind": "flaky", "scale": 8.0, "period": 2},)
            ),
            "simulated",
        )
        assert flaky.events == []  # slowness is not a logged fault event
        assert flaky.total_time > clean.total_time
