"""Tests for the packed flat-buffer hot path.

Covers the :mod:`repro.ps.flatbuffer` layer itself (layout, views,
copy-on-write, run packing), the fused optimizer path, and the contracts
the ported stores must keep: zero-copy read-only pulls on both layouts,
one-buffer-per-shard full pulls, the empty-delta fast path, and —
crucially — bit-for-bit parity between the flat path and the classic
dict-of-arrays path through push, pull and checkpoint round-trips.
"""

import numpy as np
import pytest

from repro.optim.sgd import SGD
from repro.optim.staleness_aware import StalenessAwareSGD
from repro.ps.checkpoint import restore_into, save_checkpoint
from repro.ps.flatbuffer import FlatLayout, FlatShard
from repro.ps.kvstore import KeyValueStore
from repro.ps.messages import PullRequest
from repro.ps.sharding import ShardedKeyValueStore, make_store


def make_arrays(num=6, seed=0):
    rng = np.random.default_rng(seed)
    return {f"layer{i}.weight": rng.normal(size=(3, i + 1)) for i in range(num)}


@pytest.fixture(params=["monolithic", "sharded"])
def any_store(request):
    def factory(weights=None, buffers=None, **kwargs):
        weights = weights if weights is not None else make_arrays()
        num_shards = 1 if request.param == "monolithic" else 3
        return make_store(weights, buffers, num_shards=num_shards, **kwargs)

    factory.layout = request.param
    return factory


class TestFlatLayout:
    def test_weights_precede_buffers_contiguously(self):
        layout = FlatLayout(
            {"a": (2, 3), "b": (4,)}, {"stat": (5,)}
        )
        a, b, stat = layout.segment("a"), layout.segment("b"), layout.segment("stat")
        assert (a.lo, a.hi) == (0, 6)
        assert (b.lo, b.hi) == (6, 10)
        assert layout.weights_end == 10
        assert (stat.lo, stat.hi) == (10, 15)
        assert layout.size == 15
        assert layout.weight_names == ("a", "b")
        assert layout.buffer_names == ("stat",)

    def test_scalar_shapes_occupy_one_slot(self):
        layout = FlatLayout({"s": ()})
        assert layout.segment("s").size == 1

    def test_name_overlap_rejected(self):
        with pytest.raises(ValueError):
            FlatLayout({"x": (2,)}, {"x": (2,)})


class TestFlatShard:
    def test_views_are_read_only_and_zero_copy(self):
        weights = make_arrays()
        shard = FlatShard(weights)
        name = next(iter(weights))
        view = shard.view(name)
        assert np.array_equal(view, weights[name])
        assert view.base is not None  # a view, not a copy
        with pytest.raises(ValueError):
            view[0, 0] = 1.0

    def test_flat_weights_view_is_single_slice(self):
        weights = make_arrays()
        shard = FlatShard(weights)
        block = shard.flat_weights_view()
        assert block.ndim == 1
        assert block.size == sum(a.size for a in weights.values())
        with pytest.raises(ValueError):
            block[0] = 1.0

    def test_materialize_preserves_leased_views(self):
        weights = make_arrays()
        shard = FlatShard(weights)
        name = next(iter(weights))
        view = shard.view(name)
        before = view.copy()
        shard.lease()
        assert shard.leased
        shard.materialize()
        assert not shard.leased
        shard.write(name, np.zeros_like(weights[name]))
        assert np.array_equal(view, before)  # old snapshot untouched
        assert np.all(shard.view(name) == 0)

    def test_materialize_without_lease_keeps_buffer(self):
        shard = FlatShard(make_arrays())
        buffer = shard.buffer
        shard.materialize()
        assert shard.buffer is buffer  # no gratuitous copy

    def test_pack_runs_merges_adjacent_segments(self):
        weights = {"a": np.zeros((2, 2)), "b": np.zeros(3), "c": np.zeros(5)}
        shard = FlatShard(weights)
        # All three are layout-adjacent: one fused run.
        runs = shard.pack_runs({name: np.full(a.shape, 1.0) for name, a in weights.items()})
        assert len(runs) == 1
        lo, hi, grad = runs[0]
        assert (lo, hi) == (0, 12)
        assert np.all(grad == 1.0)
        # Leaving out the middle key splits the pack into two runs.
        runs = shard.pack_runs({"a": np.ones((2, 2)), "c": np.ones(5)})
        assert [(lo, hi) for lo, hi, _ in runs] == [(0, 4), (7, 12)]

    def test_pack_runs_validates_shapes(self):
        shard = FlatShard({"a": np.zeros((2, 2))})
        with pytest.raises(ValueError):
            shard.pack_runs({"a": np.zeros(3)})
        with pytest.raises(KeyError):
            shard.pack_runs({"zzz": np.zeros(3)})


class TestFusedOptimizerParity:
    """The fused flat path must be bit-for-bit equal to the dict path."""

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    @pytest.mark.parametrize(
        "options",
        [
            {},
            {"momentum": 0.9},
            {"momentum": 0.9, "weight_decay": 1e-4},
            {"momentum": 0.9, "nesterov": True},
        ],
    )
    def test_step_flat_matches_step(self, dtype, options):
        weights = make_arrays()
        shard = FlatShard(weights, dtype=dtype)
        reference = {
            name: np.asarray(value, dtype=dtype).copy()
            for name, value in weights.items()
        }
        flat_opt = SGD(0.1, **options)
        dict_opt = SGD(0.1, **options)
        rng = np.random.default_rng(5)
        for _ in range(4):
            gradients = {
                name: rng.normal(size=a.shape) for name, a in weights.items()
            }
            flat_opt.step_flat([shard.make_update(gradients)], scale=0.5)
            dict_opt.step(reference, gradients, scale=0.5)
        for name in weights:
            assert np.array_equal(shard.view(name), reference[name]), name
        assert flat_opt.step_count == dict_opt.step_count == 4

    def test_staleness_aware_scales_once_per_push(self):
        weights = make_arrays()
        shard = FlatShard(weights)
        reference = {name: value.copy() for name, value in weights.items()}
        flat_opt = StalenessAwareSGD(0.1, alpha=0.5)
        dict_opt = StalenessAwareSGD(0.1, alpha=0.5)
        gradients = {name: np.ones(a.shape) for name, a in weights.items()}
        flat_opt.set_staleness(4)
        dict_opt.set_staleness(4)
        flat_opt.step_flat([shard.make_update(gradients)])
        dict_opt.step(reference, gradients)
        for name in weights:
            assert np.array_equal(shard.view(name), reference[name]), name
        # The pending staleness is consumed by the step, not left behind.
        assert flat_opt._pending_staleness == 0

    def test_velocity_checkpoint_roundtrip_between_paths(self):
        """Flat velocity exports per-name and reloads into either path."""
        weights = make_arrays()
        shard = FlatShard(weights)
        optimizer = SGD(0.1, momentum=0.9)
        gradients = {name: np.ones(a.shape) for name, a in weights.items()}
        optimizer.step_flat([shard.make_update(gradients)])
        state = optimizer.state_dict()
        assert set(state["velocity"]) == set(weights)
        # A fresh optimizer restored from that state continues identically
        # on the dict path.
        restored = SGD(0.1, momentum=0.9)
        restored.load_state_dict(state)
        reference = {name: shard.copy_out(name) for name in weights}
        optimizer.step_flat([shard.make_update(gradients)])
        restored.step(reference, gradients)
        for name in weights:
            assert np.array_equal(shard.view(name), reference[name]), name


class TestStoreFlatParity:
    """Flat stores must reproduce the dict path bit-for-bit end to end."""

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_push_pull_checkpoint_roundtrip_matches_dict_path(self, tmp_path, dtype, any_store):
        weights = make_arrays()
        buffers = {"bn.mean": np.zeros(4), "bn.var": np.ones(4)}
        store = any_store(weights, buffers, dtype=dtype)
        optimizer = SGD(0.1, momentum=0.9, weight_decay=1e-4)
        # Dict-path reference: plain arrays updated by the dict optimizer.
        reference = {
            name: np.asarray(value, dtype=dtype).copy()
            for name, value in weights.items()
        }
        reference_opt = SGD(0.1, momentum=0.9, weight_decay=1e-4)
        rng = np.random.default_rng(9)
        for _ in range(5):
            gradients = {
                name: rng.normal(size=a.shape) for name, a in weights.items()
            }
            store.apply_gradients(gradients, optimizer, scale=0.5)
            reference_opt.step(reference, gradients, scale=0.5)

        pulled = store.pull()
        for name in weights:
            assert np.array_equal(pulled.weights[name], reference[name]), name
            assert pulled.weights[name].dtype == np.dtype(dtype)

        # Checkpoint → fresh store → bit-identical state and velocity.
        path = save_checkpoint(tmp_path / "ckpt", store, optimizer)
        fresh = any_store(weights, buffers, dtype=dtype)
        fresh_opt = SGD(0.1, momentum=0.9, weight_decay=1e-4)
        restore_into(path, fresh, fresh_opt)
        for name in weights:
            assert np.array_equal(
                fresh.weights_snapshot()[name], reference[name]
            ), name
        for name, velocity in optimizer.state_dict()["velocity"].items():
            assert np.array_equal(
                fresh_opt.state_dict()["velocity"][name], velocity
            ), name

    def test_partial_push_touches_only_named_parameters(self, any_store):
        weights = make_arrays()
        store = any_store(weights)
        names = store.parameter_names
        before = store.weights_snapshot()
        store.apply_gradients(
            {names[0]: np.ones(weights[names[0]].shape)}, SGD(0.1, momentum=0.9)
        )
        after = store.weights_snapshot()
        assert not np.array_equal(after[names[0]], before[names[0]])
        for name in names[1:]:
            assert np.array_equal(after[name], before[name]), name


class TestZeroCopyPulls:
    def test_pulled_views_are_read_only(self, any_store):
        store = any_store()
        reply = store.pull()
        for name, value in reply.weights.items():
            with pytest.raises(ValueError):
                value[...] = 0.0

    def test_pull_snapshot_survives_later_updates(self, any_store):
        weights = make_arrays()
        store = any_store(weights)
        reply = store.pull()
        before = {name: np.array(value) for name, value in reply.weights.items()}
        rng = np.random.default_rng(3)
        for _ in range(3):
            store.apply_gradients(
                {name: rng.normal(size=a.shape) for name, a in weights.items()},
                SGD(0.5),
            )
        for name, value in reply.weights.items():
            assert np.array_equal(value, before[name]), name
            assert not np.allclose(store.weights_snapshot()[name], before[name])

    def test_full_pull_carries_one_buffer_per_shard(self, any_store):
        weights = make_arrays()
        store = any_store(weights)
        reply = store.pull()
        expected_shards = 1 if any_store.layout == "monolithic" else store.num_shards
        payloads = reply.flat_weights
        assert 1 <= len(payloads) <= expected_shards
        total = sum(payload.buffer.size for payload in payloads)
        assert total == store.num_parameters
        for payload in payloads:
            assert payload.buffer.ndim == 1
            with pytest.raises(ValueError):
                payload.buffer[0] = 1.0
            # The layout describes exactly the buffer's contents.
            assert payload.layout[-1].hi == payload.buffer.size

    def test_delta_pull_has_no_flat_payload(self):
        weights = make_arrays()
        store = ShardedKeyValueStore(weights, num_shards=2)
        assert store.pull(known_version=0).flat_weights == ()


class TestViewPropertiesAndSnapshots:
    def test_weights_property_returns_stable_read_only_views(self, any_store):
        weights = make_arrays()
        store = any_store(weights)
        views = store.weights
        assert set(views) == set(weights)
        name = next(iter(views))
        with pytest.raises(ValueError):
            views[name][...] = 0.0
        before = {n: np.array(v) for n, v in views.items()}
        store.apply_gradients(
            {n: np.ones(a.shape) for n, a in weights.items()}, SGD(0.5)
        )
        # Copy-on-write: the views keep the snapshot they were taken from.
        for n in views:
            assert np.array_equal(views[n], before[n]), n

    def test_buffers_property_and_snapshot(self, any_store):
        weights = make_arrays(num=2)
        buffers = {"bn.mean": np.full(3, 2.0)}
        store = any_store(weights, buffers)
        assert np.array_equal(store.buffers["bn.mean"], np.full(3, 2.0))
        with pytest.raises(ValueError):
            store.buffers["bn.mean"][0] = 0.0
        copy = store.snapshot()
        assert set(copy) == set(weights) | set(buffers)
        copy["bn.mean"][0] = 99.0  # snapshot is writable and independent
        assert store.buffers["bn.mean"][0] == 2.0

    def test_state_views_cover_full_state(self, any_store):
        weights = make_arrays(num=2)
        buffers = {"bn.mean": np.zeros(3)}
        store = any_store(weights, buffers)
        views = store.state_views()
        assert set(views) == set(weights) | set(buffers)


class TestEmptyDeltaFastPath:
    def test_pull_at_tip_is_empty_and_takes_no_lease(self):
        weights = make_arrays()
        store = ShardedKeyValueStore(weights, num_shards=2)
        store.apply_gradients(
            {name: np.ones(a.shape) for name, a in weights.items()}, SGD(0.1)
        )
        reply = store.pull(known_version=store.version)
        assert reply.is_delta
        assert not reply.weights and not reply.buffers
        # No lease taken: the next push must not pay a copy-on-write copy.
        buffers_before = [shard.flat.buffer for shard in store._shards]
        assert all(not shard.flat.leased for shard in store._shards)
        store.apply_gradients(
            {name: np.ones(a.shape) for name, a in weights.items()}, SGD(0.1)
        )
        for shard, before in zip(store._shards, buffers_before):
            assert shard.flat.buffer is before

    def test_pull_with_views_out_leases_only_contributing_shards(self):
        weights = make_arrays()
        store = ShardedKeyValueStore(weights, num_shards=4)
        name = store.parameter_names[0]
        store.apply_gradients({name: np.ones(weights[name].shape)}, SGD(0.1))
        store.pull(known_version=0)
        target = store.shard_of(name)
        for shard in store._shards:
            assert shard.flat.leased == (shard.index == target)


class TestPackedReplicaLoading:
    def test_flat_payload_load_equals_per_name_load(self, any_store):
        from repro.data.dataset import ArrayDataset
        from repro.data.loader import MiniBatchLoader
        from repro.models import mlp
        from repro.nn.losses import SoftmaxCrossEntropy
        from repro.ps.worker import Worker

        rng = np.random.default_rng(0)
        dataset = ArrayDataset(
            rng.normal(size=(32, 12)).astype(np.float64),
            rng.integers(0, 3, size=32),
        )

        def build_worker(worker_id):
            model = mlp(
                input_dim=12, hidden_dims=(8,), num_classes=3,
                rng=np.random.default_rng(1),
            )
            loader = MiniBatchLoader(
                dataset, batch_size=8, rng=np.random.default_rng(2)
            )
            return Worker(worker_id, model, loader, SoftmaxCrossEntropy())

        packed, plain = build_worker("packed"), build_worker("plain")
        store = any_store(
            {name: p.data for name, p in packed.model.named_parameters()}
        )
        store.apply_gradients(
            {
                name: np.full(p.shape, 0.25)
                for name, p in packed.model.named_parameters()
            },
            SGD(0.1),
        )

        packed.attach_flat_layout(store.flat_layouts)
        reply = store.pull()
        assert reply.flat_weights  # the fast path is actually exercised
        packed.load_reply(reply)
        plain.load_weights(reply.weights, reply.version)
        assert packed.local_version == plain.local_version == store.version
        for (name, a), (_, b) in zip(
            packed.model.named_parameters(), plain.model.named_parameters()
        ):
            assert np.array_equal(a.data, b.data), name

        # The packed replica still trains: gradients flow through the views.
        computation = packed.compute_gradients()
        assert set(computation.gradients) == {
            name for name, _ in packed.model.named_parameters()
        }
        assert np.isfinite(computation.loss)

    def test_delta_reply_falls_back_to_per_name_path(self):
        from repro.data.dataset import ArrayDataset
        from repro.data.loader import MiniBatchLoader
        from repro.models import mlp
        from repro.nn.losses import SoftmaxCrossEntropy
        from repro.ps.worker import Worker

        rng = np.random.default_rng(0)
        dataset = ArrayDataset(
            rng.normal(size=(16, 12)), rng.integers(0, 3, size=16)
        )
        model = mlp(
            input_dim=12, hidden_dims=(8,), num_classes=3,
            rng=np.random.default_rng(1),
        )
        worker = Worker(
            "w0",
            model,
            MiniBatchLoader(dataset, batch_size=8, rng=np.random.default_rng(2)),
            SoftmaxCrossEntropy(),
        )
        store = ShardedKeyValueStore(
            {name: p.data for name, p in model.named_parameters()}, num_shards=2
        )
        worker.attach_flat_layout(store.flat_layouts)
        worker.load_reply(store.pull())
        name = store.parameter_names[0]
        store.apply_gradients(
            {name: np.ones(dict(model.named_parameters())[name].shape)}, SGD(0.1)
        )
        delta = store.pull(known_version=worker.local_version)
        assert delta.is_delta and not delta.flat_weights
        worker.load_reply(delta)
        assert worker.local_version == store.version
        assert np.array_equal(
            dict(model.named_parameters())[name].data,
            store.weights_snapshot()[name],
        )

    def test_attach_rejects_foreign_layouts(self):
        from repro.data.dataset import ArrayDataset
        from repro.data.loader import MiniBatchLoader
        from repro.models import mlp
        from repro.nn.losses import SoftmaxCrossEntropy
        from repro.ps.worker import Worker

        rng = np.random.default_rng(0)
        dataset = ArrayDataset(
            rng.normal(size=(16, 12)), rng.integers(0, 3, size=16)
        )
        model = mlp(
            input_dim=12, hidden_dims=(8,), num_classes=3,
            rng=np.random.default_rng(1),
        )
        worker = Worker(
            "w0",
            model,
            MiniBatchLoader(dataset, batch_size=8, rng=np.random.default_rng(2)),
            SoftmaxCrossEntropy(),
        )
        stranger = KeyValueStore({"nope": np.zeros(3)})
        with pytest.raises(KeyError):
            worker.attach_flat_layout(stranger.flat_layouts)


class TestLeaseRelease:
    def test_consumed_reply_releases_lease_and_skips_cow(self, any_store):
        weights = make_arrays()
        store = any_store(weights)
        reply = store.pull()
        reply.release()
        buffers_before = [
            shard.flat.buffer for shard in getattr(store, "_shards", [])
        ] or [store._flat.buffer]
        store.apply_gradients(
            {name: np.ones(a.shape) for name, a in weights.items()}, SGD(0.1)
        )
        buffers_after = [
            shard.flat.buffer for shard in getattr(store, "_shards", [])
        ] or [store._flat.buffer]
        # No outstanding lease: the push mutated in place, no COW copy.
        for before, after in zip(buffers_before, buffers_after):
            assert after is before

    def test_release_is_idempotent_and_respects_other_holders(self, any_store):
        weights = make_arrays()
        store = any_store(weights)
        consumed = store.pull()
        held = store.pull()
        snapshot = {name: np.array(value) for name, value in held.weights.items()}
        consumed.release()
        consumed.release()  # double release must not strip the second lease
        store.apply_gradients(
            {name: np.ones(a.shape) for name, a in weights.items()}, SGD(0.5)
        )
        for name, value in held.weights.items():
            assert np.array_equal(value, snapshot[name]), name

    def test_worker_load_reply_releases(self):
        from repro.data.dataset import ArrayDataset
        from repro.data.loader import MiniBatchLoader
        from repro.models import mlp
        from repro.nn.losses import SoftmaxCrossEntropy
        from repro.ps.worker import Worker

        rng = np.random.default_rng(0)
        dataset = ArrayDataset(
            rng.normal(size=(16, 12)), rng.integers(0, 3, size=16)
        )
        model = mlp(
            input_dim=12, hidden_dims=(8,), num_classes=3,
            rng=np.random.default_rng(1),
        )
        worker = Worker(
            "w0",
            model,
            MiniBatchLoader(dataset, batch_size=8, rng=np.random.default_rng(2)),
            SoftmaxCrossEntropy(),
        )
        store = ShardedKeyValueStore(
            {name: p.data for name, p in model.named_parameters()}, num_shards=2
        )
        worker.attach_flat_layout(store.flat_layouts)
        worker.load_reply(store.pull())
        assert all(not shard.flat.leased for shard in store._shards)


class TestPackedGradientPush:
    """A packed worker's push must match a plain worker's bit-for-bit."""

    @pytest.mark.parametrize("micro_batches", [1, 3])
    def test_packed_and_plain_workers_train_identically(self, micro_batches):
        from repro.core.factory import make_policy
        from repro.data.dataset import ArrayDataset
        from repro.data.loader import MiniBatchLoader
        from repro.models import mlp
        from repro.nn.losses import SoftmaxCrossEntropy
        from repro.ps.messages import PushRequest
        from repro.ps.server import ParameterServer
        from repro.ps.worker import Worker

        rng = np.random.default_rng(0)
        dataset = ArrayDataset(
            rng.normal(size=(48, 12)), rng.integers(0, 3, size=48)
        )

        def build(worker_id):
            model = mlp(
                input_dim=12, hidden_dims=(8,), num_classes=3,
                rng=np.random.default_rng(1),
            )
            loader = MiniBatchLoader(
                dataset, batch_size=8, rng=np.random.default_rng(2)
            )
            worker = Worker(
                worker_id, model, loader, SoftmaxCrossEntropy(),
                micro_batches=micro_batches,
            )
            store = ShardedKeyValueStore(
                {name: p.data for name, p in model.named_parameters()},
                num_shards=2,
            )
            server = ParameterServer(
                store=store,
                optimizer=SGD(0.1, momentum=0.9, weight_decay=1e-4),
                policy=make_policy("asp"),
                gradient_scale=1.0,
            )
            server.register_worker(worker_id)
            return worker, server

        packed, packed_server = build("packed")
        plain, plain_server = build("plain")
        packed.attach_flat_layout(packed_server.store.flat_layouts)

        for _ in range(3):
            for worker, server in ((packed, packed_server), (plain, plain_server)):
                computation = worker.compute_gradients()
                server.handle_push(
                    PushRequest(
                        worker_id=worker.worker_id,
                        gradients=computation.gradients,
                        base_version=computation.base_version,
                        timestamp=0.0,
                        flat_gradients=computation.flat_gradients,
                    )
                )
                worker.load_reply(server.handle_pull())
        assert packed.compute_gradients().flat_gradients is not None
        packed_state = packed_server.store.weights_snapshot()
        plain_state = plain_server.store.weights_snapshot()
        for name in packed_state:
            assert np.array_equal(packed_state[name], plain_state[name]), name


class TestDeltaPullThroughServer:
    def test_known_version_pull_request_roundtrip(self):
        """A tip-version PullRequest through the server returns empty."""
        from repro.core.factory import make_policy
        from repro.ps.server import ParameterServer

        weights = make_arrays()
        server = ParameterServer(
            store=ShardedKeyValueStore(weights, num_shards=2),
            optimizer=SGD(0.1),
            policy=make_policy("asp"),
        )
        server.register_worker("w0")
        reply = server.handle_pull(
            PullRequest(worker_id="w0", known_version=server.store.version)
        )
        assert reply.is_delta and not reply.weights
