"""Tests for the key-value store and the parameter server.

Every test runs against both store layouts — the monolithic
``KeyValueStore`` and the ``ShardedKeyValueStore`` — via the parametrized
``store_factory`` fixture, verifying that the sharded store is a drop-in
replacement on the whole server surface.
"""

import numpy as np
import pytest

from repro.core.factory import make_policy
from repro.optim.sgd import SGD
from repro.ps.kvstore import KeyValueStore
from repro.ps.messages import PushRequest
from repro.ps.server import ParameterServer
from repro.ps.sharding import ShardedKeyValueStore


@pytest.fixture(params=["monolithic", "sharded"])
def store_factory(request):
    def factory(initial_weights=None, initial_buffers="default", **kwargs):
        if initial_weights is None:
            initial_weights = {"w": np.array([1.0, 1.0]), "b": np.array([0.0])}
        if initial_buffers == "default":
            initial_buffers = {"running_mean": np.array([0.5])}
        if request.param == "sharded":
            return ShardedKeyValueStore(
                initial_weights, initial_buffers, num_shards=2, **kwargs
            )
        return KeyValueStore(initial_weights, initial_buffers, **kwargs)

    factory.layout = request.param
    return factory


@pytest.fixture
def make_server(store_factory):
    def factory(paradigm="asp", num_workers=2, **kwargs):
        server = ParameterServer(
            store=store_factory(),
            optimizer=SGD(learning_rate=0.1),
            policy=make_policy(paradigm, **kwargs),
        )
        for index in range(num_workers):
            server.register_worker(f"w{index}")
        return server

    return factory


def push(server, worker_id, gradients=None, base_version=None, timestamp=0.0):
    return server.handle_push(
        PushRequest(
            worker_id=worker_id,
            gradients=gradients or {"w": np.array([1.0, 0.0])},
            base_version=server.store.version if base_version is None else base_version,
            timestamp=timestamp,
        )
    )


class TestKeyValueStore:
    def test_snapshot_is_a_copy(self, store_factory):
        store = store_factory()
        snapshot = store.weights_snapshot()
        snapshot["w"][0] = 99.0
        assert store.weights_snapshot()["w"][0] == 1.0

    def test_apply_gradients_updates_and_versions(self, store_factory):
        store = store_factory()
        version = store.apply_gradients({"w": np.array([1.0, 0.0])}, SGD(0.1))
        assert version == 1
        assert np.allclose(store.weights_snapshot()["w"], [0.9, 1.0])

    def test_unknown_gradient_rejected(self, store_factory):
        store = store_factory()
        with pytest.raises(KeyError):
            store.apply_gradients({"unknown": np.zeros(1)}, SGD(0.1))

    def test_buffers_updated_by_overwrite(self, store_factory):
        store = store_factory()
        store.update_buffers({"running_mean": np.array([2.0])})
        assert store.buffers_snapshot()["running_mean"][0] == 2.0
        with pytest.raises(ValueError):
            store.update_buffers({"running_mean": np.zeros(3)})

    def test_unknown_buffer_rejected(self, store_factory):
        store = store_factory()
        with pytest.raises(KeyError):
            store.update_buffers({"brand_new": np.zeros(1)})

    def test_full_state_combines_weights_and_buffers(self, store_factory):
        store = store_factory()
        state = store.full_state()
        assert set(state) == {"w", "b", "running_mean"}

    def test_counts_and_bytes(self, store_factory):
        store = store_factory()
        assert store.num_parameters == 3
        assert store.nbytes == 4 * 8
        assert store.parameter_names == ["w", "b"]

    def test_float32_dtype_halves_payload(self, store_factory):
        store = store_factory(dtype="float32")
        assert store.dtype == np.float32
        assert store.nbytes == 4 * 4
        store.apply_gradients({"w": np.array([1.0, 0.0])}, SGD(0.1))
        assert store.weights_snapshot()["w"].dtype == np.float32
        assert store.pull().weights["w"].dtype == np.float32

    def test_invalid_dtype_rejected(self, store_factory):
        with pytest.raises(ValueError):
            store_factory(dtype="int32")

    def test_overwrite_weights_validation(self, store_factory):
        store = store_factory()
        store.overwrite_weights({"w": np.array([5.0, 5.0])})
        assert np.allclose(store.weights_snapshot()["w"], 5.0)
        with pytest.raises(KeyError):
            store.overwrite_weights({"zzz": np.zeros(1)})
        with pytest.raises(ValueError):
            store.overwrite_weights({"w": np.zeros(3)})

    def test_pull_carries_full_model_by_default(self, store_factory):
        store = store_factory()
        reply = store.pull()
        assert not reply.is_delta
        assert set(reply.weights) == {"w", "b"}
        assert set(reply.buffers) == {"running_mean"}
        assert reply.version == 0
        assert reply.nbytes == store.nbytes

    def test_restore_version(self, store_factory):
        store = store_factory()
        store.restore_version(41)
        assert store.version == 41
        store.apply_gradients({"w": np.array([1.0, 0.0])}, SGD(0.1))
        assert store.version == 42
        with pytest.raises(ValueError):
            store.restore_version(-1)

    def test_empty_weights_rejected(self, store_factory):
        with pytest.raises(ValueError):
            store_factory(initial_weights={})


class TestParameterServer:
    def test_registration_validation(self, make_server):
        server = make_server()
        with pytest.raises(ValueError):
            server.register_worker("w0")
        with pytest.raises(KeyError):
            push(server, "stranger")

    def test_push_applies_scaled_gradient(self, make_server):
        server = make_server(num_workers=2)
        push(server, "w0")
        # Default gradient scale is 1/num_workers = 0.5, learning rate 0.1.
        assert np.allclose(server.store.weights_snapshot()["w"], [1.0 - 0.05, 1.0])

    def test_explicit_gradient_scale(self, store_factory):
        server = ParameterServer(
            store=store_factory(),
            optimizer=SGD(learning_rate=0.1),
            policy=make_policy("asp"),
            gradient_scale=1.0,
        )
        server.register_worker("w0")
        push(server, "w0")
        assert np.allclose(server.store.weights_snapshot()["w"], [0.9, 1.0])

    def test_staleness_measured_against_base_version(self, make_server):
        server = make_server(num_workers=2)
        push(server, "w0", base_version=0)
        response = push(server, "w1", base_version=0)
        assert response.staleness == 1
        summary = server.staleness_tracker.summary()
        assert summary.maximum == 1

    def test_future_base_version_rejected(self, make_server):
        server = make_server()
        with pytest.raises(ValueError):
            push(server, "w0", base_version=5)

    def test_pull_returns_current_version(self, make_server):
        server = make_server()
        reply = server.handle_pull()
        assert reply.version == 0
        push(server, "w0")
        assert server.handle_pull().version == 1

    def test_bsp_push_reports_released_workers(self, make_server):
        server = make_server(paradigm="bsp", num_workers=2)
        first = push(server, "w0", timestamp=1.0)
        assert not first.release_now
        second = push(server, "w1", timestamp=2.0)
        assert second.release_now
        assert second.released_workers == ("w0",)

    def test_learning_rate_schedule_progress(self, store_factory):
        from repro.optim.schedules import MultiStepSchedule

        server = ParameterServer(
            store=store_factory(),
            optimizer=SGD(learning_rate=0.05),
            policy=make_policy("asp"),
            learning_rate_schedule=MultiStepSchedule(0.05, milestones=(10,), decay=0.1),
        )
        server.register_worker("w0")
        server.set_progress(5)
        assert server.optimizer.learning_rate == pytest.approx(0.05)
        server.set_progress(15)
        assert server.optimizer.learning_rate == pytest.approx(0.005)

    def test_buffers_propagated_from_push(self, make_server):
        server = make_server()
        server.handle_push(
            PushRequest(
                worker_id="w0",
                gradients={"w": np.zeros(2)},
                base_version=0,
                timestamp=0.0,
                buffers={"running_mean": np.array([3.0])},
            )
        )
        assert server.handle_pull().buffers["running_mean"][0] == 3.0

    def test_statistics_contains_policy_and_staleness(self, make_server):
        server = make_server(paradigm="ssp", staleness=2)
        push(server, "w0")
        stats = server.statistics()
        assert stats["paradigm"] == "ssp"
        assert stats["store_version"] == 1
        assert stats["update_staleness"].count == 1
        assert server.pushes_handled == 1

    def test_delta_pull_through_server(self, make_server, store_factory):
        server = make_server(num_workers=2)
        push(server, "w0")
        from repro.ps.messages import PullRequest

        reply = server.handle_pull(PullRequest(worker_id="w1", known_version=0))
        assert reply.version == 1
        if store_factory.layout == "sharded":
            assert reply.is_delta
            assert set(reply.weights) == {"w"}  # only the updated parameter
        else:
            assert not reply.is_delta
            assert set(reply.weights) == {"w", "b"}
