"""Tests for deterministic network-fault injection (repro.ps.netfaults).

Covers the codec-style spec registry (parsing, targeting, backend
restrictions), the per-push decision schedule and its determinism
guarantee (two schedules of one seed produce identical decision and
event sequences), the chaos connection wrapper over a real socketpair
(torn frames must surface as :class:`ConnectionClosed`, never as partial
data), and the retry budget's bounded jittered backoff.
"""

import socket
import time

import pytest

from repro.ps.netfaults import (
    NET_FAULT_KINDS,
    ChaosConnection,
    NetFaultSchedule,
    RetryBudget,
    parse_net_fault_specs,
    validate_net_fault_specs,
)
from repro.ps.transport import ConnectionClosed, TcpConnection

WORKERS = ["worker-0", "worker-1", "worker-2"]


# ----------------------------------------------------------------------
# Parsing and validation
# ----------------------------------------------------------------------
class TestParsing:
    def test_every_kind_parses(self):
        plan = parse_net_fault_specs(
            [
                {"spec": "delay:5"},
                {"spec": "drop:0.25,3", "worker": 1},
                {"spec": "partition:2,1", "worker": "worker-2"},
                {"spec": "throttle:1000000", "worker": 0},
            ],
            WORKERS,
        )
        assert plan.kinds() == ("delay", "drop", "partition", "throttle")
        by_kind = {spec.kind: spec for spec in plan.specs}
        assert by_kind["delay"].worker is None
        assert by_kind["delay"].delay_ms == 5.0
        assert by_kind["drop"].worker == "worker-1"
        assert by_kind["drop"].probability == 0.25
        assert by_kind["drop"].times == 3
        assert by_kind["partition"].start == 2.0
        assert by_kind["partition"].duration == 1.0
        assert by_kind["throttle"].bytes_per_second == 1e6

    def test_drop_defaults(self):
        plan = parse_net_fault_specs([{"spec": "drop"}], WORKERS)
        assert plan.specs[0].probability == 1.0
        assert plan.specs[0].times == 1

    def test_unknown_kind_lists_registry(self):
        with pytest.raises(ValueError, match=", ".join(NET_FAULT_KINDS)):
            parse_net_fault_specs([{"spec": "meteor:1"}], WORKERS)

    @pytest.mark.parametrize(
        "bad",
        [
            "delay:0",
            "delay:-1",
            "delay:abc",
            "drop:0",
            "drop:1.5",
            "drop:0.5,-1",
            "drop:0.5,1,2",
            "partition:-1,1",
            "partition:2,0",
            "partition:2",
            "throttle:0",
            "throttle:-5",
        ],
    )
    def test_malformed_params_rejected_with_example(self, bad):
        with pytest.raises(ValueError, match="expected"):
            parse_net_fault_specs([{"spec": bad}], WORKERS)

    def test_entry_must_be_mapping_with_spec(self):
        with pytest.raises(ValueError, match="mapping"):
            parse_net_fault_specs(["delay:5"], WORKERS)
        with pytest.raises(ValueError, match="missing 'spec'"):
            parse_net_fault_specs([{"worker": 0}], WORKERS)
        with pytest.raises(ValueError, match="unknown net fault keys"):
            parse_net_fault_specs([{"spec": "delay:5", "kind": "delay"}], WORKERS)
        with pytest.raises(ValueError, match="sequence of entries"):
            parse_net_fault_specs({"spec": "delay:5"}, WORKERS)

    def test_worker_resolution(self):
        plan = parse_net_fault_specs(
            [{"spec": "delay:5", "worker": 2}], WORKERS
        )
        assert plan.specs[0].worker == "worker-2"
        with pytest.raises(ValueError, match="out of range"):
            parse_net_fault_specs([{"spec": "delay:5", "worker": 9}], WORKERS)
        with pytest.raises(ValueError, match="not in the roster"):
            parse_net_fault_specs(
                [{"spec": "delay:5", "worker": "worker-9"}], WORKERS
            )
        with pytest.raises(ValueError, match="index or id"):
            parse_net_fault_specs([{"spec": "delay:5", "worker": True}], WORKERS)

    def test_duplicate_kind_per_target_rejected(self):
        with pytest.raises(ValueError, match="duplicate net fault kind"):
            parse_net_fault_specs(
                [{"spec": "delay:5"}, {"spec": "delay:10"}], WORKERS
            )

    def test_allowed_kinds_restriction_names_context(self):
        with pytest.raises(ValueError, match="process pipe transport"):
            validate_net_fault_specs(
                [{"spec": "partition:2,1"}],
                WORKERS,
                allowed_kinds=("delay", "drop"),
                context="the process pipe transport",
            )

    def test_for_worker_includes_globals(self):
        plan = parse_net_fault_specs(
            [{"spec": "delay:5"}, {"spec": "drop", "worker": 1}], WORKERS
        )
        assert {s.kind for s in plan.for_worker("worker-1")} == {"delay", "drop"}
        assert {s.kind for s in plan.for_worker("worker-0")} == {"delay"}
        assert plan.tears_connections("worker-1")
        assert not plan.tears_connections("worker-0")

    def test_to_dicts_round_trips(self):
        entries = [{"spec": "delay:5"}, {"spec": "drop:0.5", "worker": "worker-1"}]
        plan = parse_net_fault_specs(entries, WORKERS)
        assert plan.to_dicts() == entries
        assert parse_net_fault_specs(plan.to_dicts(), WORKERS) == plan

    def test_empty_plan_is_falsy(self):
        assert not parse_net_fault_specs([], WORKERS)


# ----------------------------------------------------------------------
# The per-push decision schedule
# ----------------------------------------------------------------------
def _schedule(specs, worker="worker-0", seed=0, clock=None):
    plan = parse_net_fault_specs(specs, WORKERS)
    kwargs = {} if clock is None else {"clock": clock}
    return NetFaultSchedule(plan, worker, seed, **kwargs)


class TestSchedule:
    def test_same_seed_produces_identical_decisions_and_events(self):
        specs = [{"spec": "delay:5"}, {"spec": "drop:0.5,0"}]
        first = _schedule(specs, seed=7)
        second = _schedule(specs, seed=7)
        decisions_a = [first.next_push(100) for _ in range(32)]
        decisions_b = [second.next_push(100) for _ in range(32)]
        assert decisions_a == decisions_b
        assert first.events == second.events
        assert any(d.drop for d in decisions_a)  # the chaos actually fired

    def test_different_workers_draw_independent_streams(self):
        specs = [{"spec": "drop:0.5,0"}]
        a = [_schedule(specs, "worker-0", 7).next_push(0) for _ in range(1)]
        mine = _schedule(specs, "worker-0", 7)
        other = _schedule(specs, "worker-1", 7)
        assert [mine.next_push(0) for _ in range(32)] != [
            other.next_push(0) for _ in range(32)
        ]
        assert a  # silence the unused-probe lint

    def test_delay_jitter_stays_in_band(self):
        schedule = _schedule([{"spec": "delay:100"}])
        for _ in range(64):
            decision = schedule.next_push(0)
            assert 0.05 <= decision.delay < 0.15
            assert decision.drop is None

    def test_throttle_paces_by_bytes(self):
        schedule = _schedule([{"spec": "throttle:1000"}])
        assert schedule.next_push(500).throttle == pytest.approx(0.5)
        assert schedule.next_push(0).throttle == 0.0

    def test_drop_times_bounds_firings(self):
        schedule = _schedule([{"spec": "drop:1.0,2"}])
        decisions = [schedule.next_push(0) for _ in range(8)]
        assert sum(1 for d in decisions if d.drop) == 2
        assert [e["kind"] for e in schedule.events] == ["net_drop", "net_drop"]
        assert [e["push"] for e in schedule.events] == [0, 1]

    def test_partition_window_with_fake_clock(self):
        now = {"t": 0.0}
        schedule = _schedule(
            [{"spec": "partition:2,3"}], clock=lambda: now["t"]
        )
        assert schedule.next_push(0).drop is None
        assert schedule.partition_wait() == 0.0
        now["t"] = 3.0  # inside [2, 5)
        assert schedule.next_push(0).drop == "torn"
        assert schedule.partition_wait() == pytest.approx(2.0)
        held = []
        schedule.hold_reconnect(sleep=held.append)
        assert held == [pytest.approx(2.0)]
        now["t"] = 6.0  # window closed
        assert schedule.next_push(0).drop is None
        assert schedule.hold_reconnect(sleep=held.append) == 0.0
        partition_events = [
            e for e in schedule.events if e["kind"] == "net_partition"
        ]
        assert len(partition_events) == 1  # logged once, with the spec window
        assert partition_events[0]["start"] == 2.0
        assert partition_events[0]["duration"] == 3.0

    def test_mark_start_reanchors_partition_window_once(self):
        now = {"t": 0.0}
        schedule = _schedule(
            [{"spec": "partition:2,3"}], clock=lambda: now["t"]
        )
        # Slow startup: by the time training starts the [2, 5) window
        # (measured from creation) would already be half gone.
        now["t"] = 4.0
        schedule.mark_start()
        assert schedule.next_push(0).drop is None  # window now [6, 9)
        now["t"] = 7.0
        assert schedule.next_push(0).drop in ("torn", "sent")
        assert schedule.partition_wait() == pytest.approx(2.0)
        # A rejoin replays the start path; the second call must not
        # reopen the window after it has been served.
        now["t"] = 10.0
        schedule.mark_start()
        assert schedule.next_push(0).drop is None
        assert schedule.partition_wait() == 0.0

    def test_inactive_worker_has_inactive_schedule(self):
        plan = parse_net_fault_specs([{"spec": "drop", "worker": 1}], WORKERS)
        assert not NetFaultSchedule(plan, "worker-0", 0).active
        assert NetFaultSchedule(plan, "worker-1", 0).active


# ----------------------------------------------------------------------
# The chaos connection wrapper (real sockets)
# ----------------------------------------------------------------------
def _connected_pair():
    left, right = socket.socketpair()
    return TcpConnection(left), TcpConnection(right)


def _schedule_with_phase(phase: str) -> NetFaultSchedule:
    """A drop schedule whose first firing has the requested phase.

    The phase draw is deterministic per seed, so probing seeds until one
    yields the wanted phase keeps the test itself deterministic.
    """
    for seed in range(256):
        plan = parse_net_fault_specs([{"spec": "drop"}], WORKERS)
        if NetFaultSchedule(plan, "worker-0", seed).next_push(0).drop == phase:
            return NetFaultSchedule(plan, "worker-0", seed)
    pytest.fail(f"no seed under 256 yields a {phase!r} drop")


PUSH = {"type": "push", "worker": "worker-0", "seq": 0, "base_version": 0}


class TestChaosConnection:
    def test_control_traffic_passes_through(self):
        sender, receiver = _connected_pair()
        chaos = ChaosConnection(sender, _schedule_with_phase("torn"))
        chaos.send({"type": "heartbeat", "worker": "worker-0"})
        header, frames = receiver.recv(timeout=5.0)
        assert header["type"] == "heartbeat"
        assert frames == ()
        chaos.close()
        receiver.close()

    def test_torn_drop_never_surfaces_partial_data(self):
        # The peer must see a mid-frame EOF as ConnectionClosed — a torn
        # push can never decode into a partial message.
        sender, receiver = _connected_pair()
        chaos = ChaosConnection(sender, _schedule_with_phase("torn"))
        with pytest.raises(ConnectionClosed, match="chaos"):
            chaos.send(dict(PUSH))
        with pytest.raises(ConnectionClosed):
            receiver.recv(timeout=5.0)
        receiver.close()

    def test_sent_drop_delivers_then_tears(self):
        # The push lands in full — the "lost OK" half of exactly-once —
        # and only then does the socket die.
        sender, receiver = _connected_pair()
        chaos = ChaosConnection(sender, _schedule_with_phase("sent"))
        with pytest.raises(ConnectionClosed, match="chaos"):
            chaos.send(dict(PUSH))
        header, _ = receiver.recv(timeout=5.0)
        assert header == PUSH
        with pytest.raises(ConnectionClosed):  # then EOF, cleanly framed
            receiver.recv(timeout=5.0)
        receiver.close()

    def test_exhausted_drop_budget_sends_normally(self):
        schedule = _schedule_with_phase("torn")
        sender, receiver = _connected_pair()
        chaos = ChaosConnection(sender, schedule)
        with pytest.raises(ConnectionClosed):
            chaos.send(dict(PUSH))
        # times=1: the next push on a fresh socket passes untouched.
        sender2, receiver2 = _connected_pair()
        chaos2 = ChaosConnection(sender2, schedule)
        chaos2.send(dict(PUSH))
        header, _ = receiver2.recv(timeout=5.0)
        assert header == PUSH
        chaos2.close()
        receiver.close()
        receiver2.close()

    def test_torn_frame_mid_ok_raises_not_partial(self):
        # The worker's OK-wait path: a server dying mid-OK leaves half a
        # frame on the wire.  recv must raise, not return partial data.
        sender, receiver = _connected_pair()
        raw = sender.encode({"type": "ok", "worker": "worker-0"})
        sender.send_raw(bytes(raw[: len(raw) // 2]))
        sender.close()
        with pytest.raises(ConnectionClosed):
            receiver.recv(timeout=5.0)
        receiver.close()


# ----------------------------------------------------------------------
# Retry budgets
# ----------------------------------------------------------------------
class _FakeRng:
    """rng.random() == 0.5 → jitter factor exactly 1.0."""

    def random(self):
        return 0.5


class TestRetryBudget:
    def test_backoff_doubles_and_caps(self):
        sleeps = []
        budget = RetryBudget(
            max_attempts=6,
            base_delay=0.1,
            max_delay=0.5,
            rng=_FakeRng(),
            sleep=sleeps.append,
        )
        assert list(budget.attempts()) == [0, 1, 2, 3, 4, 5]
        assert sleeps == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_deadline_ends_the_generator(self):
        now = {"t": 0.0}

        def sleep(seconds):
            now["t"] += seconds

        budget = RetryBudget(
            max_attempts=100,
            base_delay=1.0,
            max_delay=1.0,
            deadline=2.5,
            rng=_FakeRng(),
            sleep=sleep,
            clock=lambda: now["t"],
        )
        attempts = list(budget.attempts())
        # Tries land at t=0, 1, 2, then 2.5 (the last pause is clamped to
        # the remaining budget); at t=2.5 the deadline is spent and the
        # generator ends.
        assert len(attempts) == 4
        assert now["t"] == pytest.approx(2.5)

    def test_for_else_fires_on_exhaustion(self):
        budget = RetryBudget(max_attempts=2, base_delay=0.0, sleep=lambda _: None)
        for _ in budget.attempts():
            pass
        else_ran = False
        for _ in RetryBudget(
            max_attempts=2, base_delay=0.0, sleep=lambda _: None
        ).attempts():
            continue
        else:
            else_ran = True
        assert else_ran

    def test_jitter_uses_injected_rng(self):
        sleeps = []
        RetryBudget(
            max_attempts=2, base_delay=1.0, rng=_FakeRng(), sleep=sleeps.append
        ).attempts().__next__()  # prime the generator
        budget = RetryBudget(
            max_attempts=2, base_delay=1.0, rng=_FakeRng(), sleep=sleeps.append
        )
        list(budget.attempts())
        assert budget.sleeps == [pytest.approx(1.0)]

    def test_real_clock_smoke(self):
        start = time.monotonic()
        budget = RetryBudget(max_attempts=3, base_delay=0.01, max_delay=0.02)
        assert len(list(budget.attempts())) == 3
        assert time.monotonic() - start < 1.0
