"""Integration tests for the multi-process runtime (repro.ps.process_runtime).

These spawn real OS processes; every plan is kept tiny so the whole module
stays in seconds.  The crash tests are the contract the shm layer makes in
its docstring: a worker dying mid-run surfaces as an error, never as a hang
or a leaked /dev/shm segment.
"""

import dataclasses
import multiprocessing
import os

import pytest

from repro.experiments.config import TINY
from repro.ps.process_runtime import (
    ProcessTrainer,
    ProcessTrainingPlan,
    default_context_name,
)


def tiny_plan(**overrides) -> ProcessTrainingPlan:
    base = dict(
        workload="mlp",
        scale_fields=dataclasses.asdict(TINY),
        paradigm="dssp",
        paradigm_kwargs={"s_lower": 1, "s_upper": 4},
        num_workers=2,
        iterations_per_worker=4,
        batch_size=16,
        evaluate_every_pushes=0,
        seed=0,
        wait_timeout=60.0,
    )
    base.update(overrides)
    return ProcessTrainingPlan(**base)


def leaked_segments() -> list[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [name for name in os.listdir("/dev/shm") if name.startswith("repro-")]


class TestPlanValidation:
    def test_bad_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            tiny_plan(transport="carrier-pigeon")

    def test_unknown_slowdown_worker_rejected(self):
        with pytest.raises(ValueError, match="nonexistent workers"):
            tiny_plan(slowdowns={"worker-9": 1.0})

    def test_unknown_crash_worker_rejected(self):
        with pytest.raises(ValueError, match="nonexistent workers"):
            tiny_plan(crash_at={"worker-9": 1})

    def test_paradigm_validated_at_construction(self):
        with pytest.raises(ValueError):
            tiny_plan(paradigm="nope", paradigm_kwargs={})


class TestEndToEnd:
    def test_full_run_reports_everything(self):
        result = ProcessTrainer(tiny_plan(evaluate_every_pushes=4)).run()
        assert result.errors == []
        assert result.wall_time > 0
        assert len(result.worker_reports) == 2
        for report in result.worker_reports:
            assert report.iterations == 4
            assert report.samples_processed == 4 * 16
        assert result.server_statistics["store_version"] == 8
        assert result.server_statistics["paradigm"] == "dssp"
        assert result.server_statistics["cow_fallbacks"] == 0
        # Curve: initial model at t=0, periodic evals, final model at wall.
        assert result.evaluation_times[0] == 0.0
        assert result.evaluation_times[-1] == pytest.approx(result.wall_time)
        assert len(result.evaluation_times) >= 3
        assert leaked_segments() == []

    def test_bsp_keeps_workers_in_lockstep(self):
        result = ProcessTrainer(
            tiny_plan(paradigm="bsp", paradigm_kwargs={}, num_workers=3)
        ).run()
        assert result.errors == []
        staleness = result.server_statistics["update_staleness"]
        # Under BSP a worker's update can be at most one round stale.
        assert staleness.maximum <= 3

    def test_pipe_transport_matches_shm_iteration_counts(self):
        shm_result = ProcessTrainer(tiny_plan(transport="shm")).run()
        pipe_result = ProcessTrainer(tiny_plan(transport="pipe")).run()
        assert shm_result.errors == pipe_result.errors == []
        assert (
            shm_result.server_statistics["store_version"]
            == pipe_result.server_statistics["store_version"]
        )
        assert leaked_segments() == []

    def test_sharded_store_and_float32(self):
        result = ProcessTrainer(tiny_plan(num_shards=3, dtype="float32")).run()
        assert result.errors == []
        assert result.server_statistics["store_version"] == 8

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_context_works(self):
        result = ProcessTrainer(tiny_plan(), context="spawn").run()
        assert result.errors == []
        assert result.server_statistics["store_version"] == 8
        assert leaked_segments() == []


class TestCrashRobustness:
    def test_worker_crash_reports_error_and_leaks_nothing(self):
        plan = tiny_plan(
            paradigm="asp",
            paradigm_kwargs={},
            num_workers=3,
            iterations_per_worker=6,
            crash_at={"worker-1": 2},
            wait_timeout=30.0,
        )
        result = ProcessTrainer(plan).run()
        assert any("worker-1" in error for error in result.errors), result.errors
        assert leaked_segments() == []

    def test_crash_before_first_iteration(self):
        plan = tiny_plan(crash_at={"worker-0": 0}, wait_timeout=30.0)
        result = ProcessTrainer(plan).run()
        assert result.errors != []
        assert leaked_segments() == []

    def test_default_context_name_resolves(self):
        assert default_context_name() in multiprocessing.get_all_start_methods()


class TestPipeTransportDeath:
    def test_death_after_push_on_pipe_rebounds_policy(self):
        # worker-1 dies immediately after its first push goes into the pipe
        # (EOF mid-protocol, possibly mid-message).  The server must surface
        # the death, deregister the worker so the SSP bound is recomputed
        # over the survivor, and let worker-0 finish its full budget —
        # without it, worker-0 blocks forever at lead > staleness over a
        # corpse.  Nothing may leak.
        plan = tiny_plan(
            transport="pipe",
            paradigm="ssp",
            paradigm_kwargs={"staleness": 2},
            crash_after_push={"worker-1": 1},
            wait_timeout=30.0,
        )
        result = ProcessTrainer(plan).run()
        assert any("worker-1" in error for error in result.errors), result.errors
        by_id = {report.worker_id: report for report in result.worker_reports}
        assert by_id["worker-0"].iterations == 4
        # Survivor's 4 pushes plus whatever worker-1 landed before dying.
        assert result.server_statistics["store_version"] >= 5
        assert leaked_segments() == []
