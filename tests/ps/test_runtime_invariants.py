"""Concurrency invariants of the threaded runtime.

The threaded runtime is a real concurrent system; these tests verify the
synchronization guarantees hold under actual thread interleavings (not just
in the deterministic simulator): SSP's staleness bound on applied updates,
BSP's lockstep rounds, and DSSP's wait-reduction relative to SSP at its
lower threshold when a worker is artificially slowed down.
"""

import numpy as np
import pytest

from repro.core.factory import make_policy
from repro.data.loader import MiniBatchLoader
from repro.models import mlp
from repro.nn.losses import SoftmaxCrossEntropy
from repro.optim.sgd import SGD
from repro.ps.callbacks import Callback
from repro.ps.runtime import ThreadedTrainer
from repro.ps.server import ParameterServer
from repro.ps.sharding import make_store
from repro.ps.worker import Worker


@pytest.fixture(params=["monolithic", "sharded"])
def store_layout(request):
    """Run every invariant against both store layouts: the sharded store's
    concurrent (per-shard-locked) push path must uphold the same guarantees
    as the globally locked monolithic path."""
    return request.param


class _StalenessCollector(Callback):
    """Records the staleness reported by every push response."""

    def __init__(self) -> None:
        self.staleness: list[int] = []

    def on_push(self, context: dict) -> None:
        self.staleness.append(context["response"].staleness)


def build_trainer(
    train, paradigm, num_workers=3, iterations=6, slowdowns=None,
    store_layout="monolithic", **policy_kwargs,
):
    input_dim = train.inputs.shape[1]

    def build_model(rng):
        return mlp(input_dim=input_dim, hidden_dims=(8,), num_classes=4, rng=rng)

    global_model = build_model(np.random.default_rng(0))
    store = make_store(
        initial_weights={name: p.data for name, p in global_model.named_parameters()},
        initial_buffers=global_model.buffers(),
        num_shards=3 if store_layout == "sharded" else 1,
    )
    server = ParameterServer(
        store=store,
        optimizer=SGD(learning_rate=0.05),
        policy=make_policy(paradigm, **policy_kwargs),
    )
    workers = []
    for index in range(num_workers):
        worker_id = f"w{index}"
        server.register_worker(worker_id)
        replica = build_model(np.random.default_rng(index + 1))
        replica.load_state_dict(global_model.state_dict())
        workers.append(
            Worker(
                worker_id=worker_id,
                model=replica,
                loader=MiniBatchLoader(train, batch_size=8, rng=np.random.default_rng(index + 10)),
                loss_fn=SoftmaxCrossEntropy(),
            )
        )
    collector = _StalenessCollector()
    trainer = ThreadedTrainer(
        server=server,
        workers=workers,
        iterations_per_worker=iterations,
        slowdowns=slowdowns or {},
        callbacks=[collector],
        wait_timeout=30.0,
    )
    return trainer, collector


class TestThreadedInvariants:
    def test_total_pushes_always_equal_quota(self, tiny_flat_datasets, store_layout):
        train, _ = tiny_flat_datasets
        for paradigm, kwargs in [
            ("bsp", {}),
            ("asp", {}),
            ("ssp", {"staleness": 1}),
            ("dssp", {"s_lower": 1, "s_upper": 3}),
        ]:
            trainer, _collector = build_trainer(
                train, paradigm, store_layout=store_layout, **kwargs
            )
            result = trainer.run()
            assert result.errors == []
            assert trainer.server.pushes_handled == 3 * 6

    def test_bsp_update_staleness_bounded_by_one_round(self, tiny_flat_datasets, store_layout):
        train, _ = tiny_flat_datasets
        trainer, collector = build_trainer(
            train, "bsp", num_workers=3, iterations=8, store_layout=store_layout
        )
        result = trainer.run()
        assert result.errors == []
        # Under BSP a gradient can at most miss the other workers' pushes of
        # its own round: staleness < number of workers.
        assert max(collector.staleness) <= 2

    def test_ssp_update_staleness_bounded(self, tiny_flat_datasets, store_layout):
        train, _ = tiny_flat_datasets
        staleness_bound = 2
        trainer, collector = build_trainer(
            train,
            "ssp",
            store_layout=store_layout,
            num_workers=3,
            iterations=8,
            staleness=staleness_bound,
            slowdowns={"w2": 0.005},
        )
        result = trainer.run()
        assert result.errors == []
        # A gradient computed while leading by at most s iterations can miss
        # at most s * (P - 1) + (P - 1) other updates.
        assert max(collector.staleness) <= (staleness_bound + 1) * 2

    def test_dssp_waits_no_more_than_ssp_lower_threshold_with_straggler(
        self, tiny_flat_datasets
    ):
        train, _ = tiny_flat_datasets
        slowdowns = {"w2": 0.01}
        ssp_trainer, _unused = build_trainer(
            train, "ssp", num_workers=3, iterations=6, staleness=1, slowdowns=slowdowns
        )
        ssp_result = ssp_trainer.run()
        dssp_trainer, _unused = build_trainer(
            train, "dssp", num_workers=3, iterations=6, s_lower=1, s_upper=6,
            slowdowns=slowdowns,
        )
        dssp_result = dssp_trainer.run()
        assert ssp_result.errors == [] and dssp_result.errors == []
        ssp_wait = sum(report.total_wait_time for report in ssp_result.worker_reports)
        dssp_wait = sum(report.total_wait_time for report in dssp_result.worker_reports)
        # Thread-scheduling noise means this cannot be exact; allow 50% slack
        # while still catching gross regressions (DSSP must not wait far more
        # than SSP at its lower threshold).
        assert dssp_wait <= ssp_wait * 1.5 + 0.05
