"""Tests for the shard router and the sharded copy-on-write store."""

import threading

import numpy as np
import pytest

from repro.core.factory import make_policy
from repro.optim.sgd import SGD
from repro.ps.kvstore import KeyValueStore
from repro.ps.server import ParameterServer
from repro.ps.sharding import ShardedKeyValueStore, ShardRouter, make_store


def make_arrays(num=8, seed=0):
    rng = np.random.default_rng(seed)
    return {f"layer{i}.weight": rng.normal(size=(4, i + 1)) for i in range(num)}


class TestShardRouter:
    def test_hash_routing_is_deterministic_and_stateless(self):
        sizes = {name: array.nbytes for name, array in make_arrays().items()}
        first = ShardRouter(sizes, num_shards=3, strategy="hash")
        second = ShardRouter(sizes, num_shards=3, strategy="hash")
        assert first.assignments == second.assignments
        # Hash routing resolves keys it was not built with.
        assert 0 <= first.shard_of("never.seen") < 3

    def test_size_routing_balances_payload(self):
        rng = np.random.default_rng(1)
        sizes = {f"p{i}": int(rng.integers(1, 1000)) for i in range(64)}
        router = ShardRouter(sizes, num_shards=4, strategy="size")
        assert sum(router.shard_sizes) == sum(sizes.values())
        assert router.balance() < 1.1  # near-even split
        with pytest.raises(KeyError):
            router.shard_of("never.seen")

    def test_every_key_routed_within_range(self):
        sizes = {name: array.nbytes for name, array in make_arrays().items()}
        for strategy in ("hash", "size"):
            router = ShardRouter(sizes, num_shards=3, strategy=strategy)
            assert set(router.assignments) == set(sizes)
            assert all(0 <= shard < 3 for shard in router.assignments.values())

    def test_shards_for_returns_sorted_distinct(self):
        sizes = {name: array.nbytes for name, array in make_arrays().items()}
        router = ShardRouter(sizes, num_shards=4, strategy="size")
        shards = router.shards_for(sizes)
        assert shards == sorted(set(shards))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ShardRouter({"a": 1}, num_shards=0)
        with pytest.raises(ValueError):
            ShardRouter({"a": 1}, num_shards=2, strategy="nope")
        with pytest.raises(ValueError):
            ShardRouter({}, num_shards=2)


class TestMakeStore:
    def test_factory_selects_layout(self):
        weights = make_arrays(num=2)
        assert isinstance(make_store(weights, num_shards=1), KeyValueStore)
        sharded = make_store(weights, num_shards=4, dtype="float32")
        assert isinstance(sharded, ShardedKeyValueStore)
        assert sharded.num_shards == 4
        assert sharded.dtype == np.float32
        with pytest.raises(ValueError):
            make_store(weights, num_shards=0)


class TestShardedStoreParity:
    """The sharded store must be numerically identical to the monolithic one."""

    @pytest.mark.parametrize("strategy", ["hash", "size"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 16])
    def test_gradient_application_matches_monolithic(self, num_shards, strategy):
        weights = make_arrays()
        mono = KeyValueStore(weights)
        sharded = ShardedKeyValueStore(
            weights, num_shards=num_shards, strategy=strategy
        )
        mono_opt = SGD(0.1, momentum=0.9, weight_decay=1e-4)
        shard_opt = SGD(0.1, momentum=0.9, weight_decay=1e-4)
        rng = np.random.default_rng(7)
        for step in range(5):
            gradients = {
                name: rng.normal(size=array.shape) for name, array in weights.items()
            }
            v1 = mono.apply_gradients(gradients, mono_opt, scale=0.5)
            v2 = sharded.apply_gradients(gradients, shard_opt, scale=0.5)
            assert v1 == v2 == step + 1
        for name in weights:
            assert np.allclose(
                mono.weights_snapshot()[name], sharded.weights_snapshot()[name]
            )
        assert mono.version == sharded.version
        assert sharded.num_parameters == mono.num_parameters
        assert sharded.nbytes == mono.nbytes
        assert sharded.parameter_names == mono.parameter_names

    def test_shard_versions_count_touched_shards_only(self):
        weights = make_arrays(num=4)
        store = ShardedKeyValueStore(weights, num_shards=4, strategy="size")
        name = store.parameter_names[0]
        target = store.shard_of(name)
        store.apply_gradients(
            {name: np.zeros(weights[name].shape)}, SGD(0.1)
        )
        for index, version in enumerate(store.shard_versions):
            assert version == (1 if index == target else 0)
        assert store.version == 1


class TestCopyOnWritePulls:
    def test_pull_views_are_read_only(self):
        store = ShardedKeyValueStore(make_arrays(), num_shards=2)
        reply = store.pull()
        name = next(iter(reply.weights))
        with pytest.raises(ValueError):
            reply.weights[name][0, 0] = 1.0

    def test_snapshot_view_survives_later_updates(self):
        weights = make_arrays()
        store = ShardedKeyValueStore(weights, num_shards=2)
        reply = store.pull()
        before = {name: np.array(value) for name, value in reply.weights.items()}
        rng = np.random.default_rng(3)
        for _ in range(3):
            store.apply_gradients(
                {name: rng.normal(size=a.shape) for name, a in weights.items()},
                SGD(0.5),
            )
        for name, value in reply.weights.items():
            assert np.array_equal(value, before[name]), name
            assert not np.allclose(store.weights_snapshot()[name], before[name])

    def test_delta_pull_returns_only_dirty_keys(self):
        weights = make_arrays()
        store = ShardedKeyValueStore(weights, num_shards=4)
        names = store.parameter_names
        store.apply_gradients({names[0]: np.ones(weights[names[0]].shape)}, SGD(0.1))
        store.apply_gradients({names[1]: np.ones(weights[names[1]].shape)}, SGD(0.1))
        delta = store.pull(known_version=1)
        assert delta.is_delta
        assert set(delta.weights) == {names[1]}
        assert delta.version == 2
        # A worker already at the tip gets an empty delta.
        assert not store.pull(known_version=2).weights
        # A full pull still carries everything.
        assert set(store.pull().weights) == set(names)

    def test_delta_reconstruction_matches_full_state(self):
        """Applying deltas on top of an old replica reproduces a full pull."""
        weights = make_arrays()
        store = ShardedKeyValueStore(weights, num_shards=4)
        replica = {name: np.array(value) for name, value in store.pull().weights.items()}
        known = 0
        rng = np.random.default_rng(11)
        for _ in range(6):
            subset = rng.choice(store.parameter_names, size=3, replace=False)
            store.apply_gradients(
                {name: rng.normal(size=weights[name].shape) for name in subset},
                SGD(0.2),
            )
            if rng.random() < 0.5:
                delta = store.pull(known_version=known)
                for name, value in delta.weights.items():
                    replica[name] = np.array(value)
                known = delta.version
        delta = store.pull(known_version=known)
        for name, value in delta.weights.items():
            replica[name] = np.array(value)
        full = store.weights_snapshot()
        for name in store.parameter_names:
            assert np.array_equal(replica[name], full[name]), name

    def test_delta_bytes_shrink_when_few_keys_dirty(self):
        weights = make_arrays(num=10)
        store = ShardedKeyValueStore(weights, num_shards=4)
        full = store.pull()
        name = store.parameter_names[0]
        store.apply_gradients({name: np.ones(weights[name].shape)}, SGD(0.1))
        delta = store.pull(known_version=0)
        assert delta.nbytes == weights[name].nbytes
        assert delta.nbytes * 2 <= full.nbytes

    def test_buffer_updates_marked_dirty(self):
        weights = make_arrays(num=2)
        buffers = {"bn.mean": np.zeros(3), "bn.var": np.ones(3)}
        store = ShardedKeyValueStore(weights, buffers, num_shards=2)
        name = store.parameter_names[0]
        store.apply_gradients({name: np.zeros(weights[name].shape)}, SGD(0.1))
        store.update_buffers({"bn.mean": np.full(3, 7.0)})
        # Buffer deltas are inclusive at the boundary version: a buffer
        # stamped with the worker's known version may have been written
        # after that worker's pull returned, so it is resent.
        delta = store.pull(known_version=1)
        assert set(delta.buffers) == {"bn.mean"}
        assert np.allclose(delta.buffers["bn.mean"], 7.0)
        assert not delta.weights  # the weight update is already at version 1
        # A worker two versions behind receives the untouched buffer too
        # (stamp 0 >= known 0) but never the never-updated one afterwards.
        assert set(store.pull(known_version=0).buffers) == {"bn.mean", "bn.var"}
        store.apply_gradients({name: np.zeros(weights[name].shape)}, SGD(0.1))
        assert set(store.pull(known_version=2).buffers) == set()


class TestConcurrency:
    def test_concurrent_disjoint_pushes_and_pulls(self):
        weights = {f"p{i}": np.zeros((32, 8)) for i in range(8)}
        store = ShardedKeyValueStore(weights, num_shards=8, strategy="size")
        optimizer = SGD(1.0)
        rounds = 100
        errors = []

        def pusher(name):
            try:
                gradient = {name: np.full((32, 8), -1.0)}
                for _ in range(rounds):
                    store.apply_gradients(gradient, optimizer)
            except Exception as error:  # pragma: no cover - fails the test below
                errors.append(error)

        def puller():
            try:
                known = None
                for _ in range(rounds):
                    reply = store.pull(known)
                    for value in reply.weights.values():
                        flat = np.asarray(value).ravel()
                        # A COW snapshot must be internally consistent: every
                        # element of one array comes from the same update.
                        assert np.all(flat == flat[0])
                    known = reply.version
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=pusher, args=(name,)) for name in weights
        ] + [threading.Thread(target=puller) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.version == len(weights) * rounds
        for name, value in store.weights_snapshot().items():
            assert np.all(value == rounds)

    def test_server_concurrent_apply_flags(self):
        weights = make_arrays(num=2)
        assert not KeyValueStore(weights).supports_concurrent_apply
        assert not KeyValueStore(weights).supports_delta_pull
        sharded = ShardedKeyValueStore(weights, num_shards=2)
        assert sharded.supports_concurrent_apply
        assert sharded.supports_delta_pull

    def test_split_push_api_matches_handle_push(self):
        from repro.ps.messages import PushRequest

        weights = make_arrays(num=4)
        server = ParameterServer(
            store=ShardedKeyValueStore(weights, num_shards=2),
            optimizer=SGD(0.1),
            policy=make_policy("asp"),
        )
        server.register_worker("w0")
        request = PushRequest(
            worker_id="w0",
            gradients={name: np.zeros(a.shape) for name, a in weights.items()},
            base_version=0,
            timestamp=0.0,
        )
        applied = server.apply_push(request)
        response = server.finish_push(request, applied)
        assert response.new_version == 1
        assert response.staleness == 0
        assert server.pushes_handled == 1


class TestRestore:
    def test_restore_version_with_matching_shards(self):
        store = ShardedKeyValueStore(make_arrays(), num_shards=3)
        store.restore_version(9, shard_versions=[4, 3, 2])
        assert store.version == 9
        assert store.shard_versions == [4, 3, 2]

    def test_restore_version_mismatched_layout_falls_back(self):
        store = ShardedKeyValueStore(make_arrays(), num_shards=3)
        store.restore_version(9, shard_versions=[4, 3])  # from a 2-shard store
        assert store.version == 9
        assert store.shard_versions == [9, 9, 9]

    def test_restore_marks_everything_dirty(self):
        weights = make_arrays()
        store = ShardedKeyValueStore(weights, num_shards=2)
        store.restore_version(5)
        delta = store.pull(known_version=4)
        assert set(delta.weights) == set(store.parameter_names)
        assert delta.version == 5
