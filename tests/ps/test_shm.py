"""Tests for the shared-memory store layer (repro.ps.shm).

Everything here runs in one process: the cross-process lease protocol is
pure shared-state arithmetic, so a writer store and a reader client attached
to the same segments exercise it fully without spawning children (the
multi-process integration lives in test_process_runtime.py).
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.optim.sgd import SGD
from repro.ps.shm import (
    SharedFlatStore,
    SharedSegment,
    ShmStoreClient,
    create_shared_store,
)

CTX = multiprocessing.get_context()


def leaked_segments() -> list[str]:
    """Names of repro shared-memory segments currently present."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [name for name in os.listdir("/dev/shm") if name.startswith("repro-")]


@pytest.fixture()
def handle():
    made = create_shared_store(
        initial_weights={
            "a": np.array([1.0, 2.0, 3.0]),
            "b": np.array([[4.0, 5.0], [6.0, 7.0]]),
        },
        initial_buffers={"running": np.array([0.5])},
        num_shards=2,
        slots=3,
        context=CTX,
        grad_mailboxes=0,
    )
    try:
        yield made
    finally:
        made.unlink_all()


class TestSharedSegment:
    def test_create_attach_roundtrip(self):
        segment = SharedSegment.create(64)
        try:
            view = segment.ndarray(np.float64, 8)
            view[:] = np.arange(8)
            other = SharedSegment.attach(segment.name)
            np.testing.assert_array_equal(other.ndarray(np.float64, 8), np.arange(8))
            del view
            other.close()
        finally:
            segment.close()
            segment.unlink()

    def test_unlink_is_idempotent_and_tolerant(self):
        segment = SharedSegment.create(8)
        segment.close()
        segment.unlink()
        segment.unlink()  # second unlink: no error
        SharedSegment.unlink_by_name(segment.name)  # already gone: no error
        with pytest.raises(FileNotFoundError):
            SharedSegment.attach(segment.name)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SharedSegment.create(0)


class TestCreateSharedStore:
    def test_initial_state_visible_through_store(self, handle):
        store = SharedFlatStore(handle)
        state = store.state_views()
        np.testing.assert_array_equal(state["a"], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(state["b"], [[4.0, 5.0], [6.0, 7.0]])
        np.testing.assert_array_equal(state["running"], [0.5])
        assert store.version == 0
        assert store.num_shards == 2
        assert sorted(store.parameter_names) == ["a", "b"]

    def test_weight_buffer_name_overlap_rejected(self):
        with pytest.raises(ValueError, match="both weight and buffer"):
            create_shared_store(
                initial_weights={"x": np.ones(2)},
                initial_buffers={"x": np.ones(2)},
                slots=2,
                context=CTX,
            )

    def test_needs_at_least_two_slots(self):
        with pytest.raises(ValueError, match="slots"):
            create_shared_store(
                initial_weights={"x": np.ones(2)}, slots=1, context=CTX
            )

    def test_float32_dtype_respected(self):
        made = create_shared_store(
            initial_weights={"x": np.ones(4)}, dtype="float32", slots=2, context=CTX
        )
        try:
            store = SharedFlatStore(made)
            assert store.dtype == np.float32
            assert store.nbytes == 4 * 4
        finally:
            made.unlink_all()

    def test_creation_failure_cleans_partial_segments(self):
        before = set(leaked_segments())
        with pytest.raises(ValueError):
            create_shared_store(initial_weights={}, slots=2, context=CTX)
        assert set(leaked_segments()) == before


class TestApplyGradients:
    def test_flat_gradients_sgd_update(self, handle):
        store = SharedFlatStore(handle)
        optimizer = SGD(learning_rate=0.1, momentum=0.0)
        flat = {
            shard_index: np.ones(
                dict(store.flat_layouts)[shard_index][-1].hi, dtype=np.float64
            )
            for shard_index, segments in store.flat_layouts
            if segments
        }
        version = store.apply_gradients({}, optimizer, scale=0.5, flat_gradients=flat)
        assert version == 1
        assert store.version == 1
        state = store.state_views()
        np.testing.assert_allclose(state["a"], np.array([1.0, 2.0, 3.0]) - 0.05)
        np.testing.assert_allclose(
            state["b"], np.array([[4.0, 5.0], [6.0, 7.0]]) - 0.05
        )
        # Buffers are untouched by gradient application.
        np.testing.assert_array_equal(state["running"], [0.5])

    def test_named_gradients_routed_per_shard(self, handle):
        store = SharedFlatStore(handle)
        optimizer = SGD(learning_rate=0.1, momentum=0.0)
        store.apply_gradients(
            {"a": np.full(3, 2.0), "b": np.full((2, 2), 2.0)}, optimizer
        )
        state = store.state_views()
        np.testing.assert_allclose(state["a"], np.array([1.0, 2.0, 3.0]) - 0.2)

    def test_unknown_gradient_name_rejected(self, handle):
        store = SharedFlatStore(handle)
        with pytest.raises(KeyError, match="unknown parameters"):
            store.apply_gradients({"nope": np.ones(3)}, SGD(learning_rate=0.1))

    def test_push_without_any_gradients_rejected(self, handle):
        store = SharedFlatStore(handle)
        with pytest.raises(ValueError, match="neither"):
            store.apply_gradients({}, SGD(learning_rate=0.1))

    def test_reader_attachment_cannot_mutate(self, handle):
        reader = SharedFlatStore(handle, writer=False)
        with pytest.raises(RuntimeError, match="read-only"):
            reader.apply_gradients({"a": np.ones(3)}, SGD(learning_rate=0.1))
        with pytest.raises(RuntimeError, match="read-only"):
            reader.update_buffers({"running": np.zeros(1)})


class TestBuffers:
    def test_update_buffers_writes_through(self, handle):
        store = SharedFlatStore(handle)
        store.update_buffers({"running": np.array([2.5])})
        np.testing.assert_array_equal(store.state_views()["running"], [2.5])

    def test_unknown_buffer_rejected(self, handle):
        store = SharedFlatStore(handle)
        with pytest.raises(KeyError, match="unknown entries"):
            store.update_buffers({"nope": np.zeros(1)})


class TestCrossProcessCow:
    """The slot-based lease protocol, exercised writer-vs-client in process."""

    def test_leased_snapshot_survives_update(self, handle):
        store = SharedFlatStore(handle)
        client = ShmStoreClient(handle)
        reply = client.pull_reply()
        before = {
            payload.shard: payload.buffer.copy() for payload in reply.flat_weights
        }
        flat = {
            index: np.ones(segments[-1].hi)
            for index, segments in store.flat_layouts
            if segments
        }
        store.apply_gradients({}, SGD(learning_rate=1.0, momentum=0.0), flat_gradients=flat)
        # The leased views still observe exactly the pre-update snapshot.
        for payload in reply.flat_weights:
            np.testing.assert_array_equal(payload.buffer, before[payload.shard])
        reply.release()
        assert store.cow_fallbacks == 0

    def test_release_makes_next_update_copy_free(self, handle):
        store = SharedFlatStore(handle)
        client = ShmStoreClient(handle)
        reply = client.pull_reply()
        reply.release()
        slots_before = [shard.current_slot for shard in store._shards]
        flat = {
            index: np.ones(segments[-1].hi)
            for index, segments in store.flat_layouts
            if segments
        }
        store.apply_gradients({}, SGD(learning_rate=0.1), flat_gradients=flat)
        # No outstanding lease -> the update mutated in place, no slot moved.
        assert [shard.current_slot for shard in store._shards] == slots_before

    def test_client_skips_unchanged_shards(self, handle):
        store = SharedFlatStore(handle)
        client = ShmStoreClient(handle)
        first = client.pull_reply()
        assert len(first.flat_weights) == 2  # both shards are news on first pull
        first.release()
        second = client.pull_reply()
        assert second.flat_weights == ()  # nothing changed since
        second.release()
        store.update_buffers({"running": np.array([9.0])})
        third = client.pull_reply()
        # Only the shard holding the buffer entry was dirtied.
        assert len(third.flat_weights) <= 1
        third.release()

    def test_exhausted_slots_fall_back_in_place(self):
        made = create_shared_store(
            initial_weights={"x": np.ones(4)}, slots=2, context=CTX
        )
        try:
            store = SharedFlatStore(made)
            shard = store._shards[0]
            optimizer = SGD(learning_rate=0.1, momentum=0.0)
            flat = {0: np.ones(4)}
            with shard.lock:
                shard.lease_current()  # pin slot 0 (never released: a "crash")
            store.apply_gradients({}, optimizer, flat_gradients=flat)  # moves to slot 1
            with shard.lock:
                shard.lease_current()  # pin slot 1 too
            store.apply_gradients({}, optimizer, flat_gradients=flat)
            assert store.cow_fallbacks == 1  # no free slot: mutated in place
        finally:
            made.unlink_all()

    def test_leased_state_releases_on_exit(self, handle):
        store = SharedFlatStore(handle)
        with store.leased_state() as views:
            assert set(views) == {"a", "b", "running"}
            assert all(shard.leased for shard in store._shards)
        assert not any(shard.leased for shard in store._shards)


class TestCleanup:
    def test_unlink_all_removes_every_segment(self):
        made = create_shared_store(
            initial_weights={"x": np.ones(4)},
            slots=2,
            context=CTX,
            grad_mailboxes=2,
        )
        names = made.segment_names
        assert len(names) == 1 + 1 + 2  # header + one shard + two mailboxes
        for name in names:
            SharedSegment.attach(name).close()  # all exist
        made.unlink_all()
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedSegment.attach(name)
        made.unlink_all()  # idempotent
