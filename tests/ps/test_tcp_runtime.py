"""Integration tests for the socket runtime (repro.ps.tcp_runtime).

Real sockets, real processes, tiny plans.  The membership-race tests run
the server in a thread and speak the wire protocol by hand so the races
(duplicate join, join after abort) are deterministic rather than
timing-dependent; the restart test exercises the full SIGTERM →
checkpoint → relaunch → reconnect cycle with OS processes and asserts
bit-for-bit resumption.
"""

import dataclasses
import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.staleness import StalenessSummary
from repro.experiments.config import TINY
from repro.ps.messages import WorkerReport
from repro.ps.tcp_runtime import (
    TcpServer,
    TcpTrainer,
    TcpTrainingPlan,
    _serve_entry,
    _worker_entry,
    result_from_wire,
    result_to_wire,
)
from repro.ps.transport import connect_tcp


def tiny_plan(**overrides) -> TcpTrainingPlan:
    base = dict(
        workload="mlp",
        scale_fields=dataclasses.asdict(TINY),
        paradigm="dssp",
        paradigm_kwargs={"s_lower": 1, "s_upper": 4},
        num_workers=2,
        iterations_per_worker=4,
        batch_size=16,
        evaluate_every_pushes=0,
        seed=0,
        wait_timeout=60.0,
    )
    base.update(overrides)
    return TcpTrainingPlan(**base)


class ServerThread:
    """Run a TcpServer on an ephemeral port in a background thread."""

    def __init__(self, plan: TcpTrainingPlan):
        self.ready = threading.Event()
        self.address = None
        self.result = None

        def run():
            def on_ready(address):
                self.address = address
                self.ready.set()

            self.result = TcpServer(plan, ready_callback=on_ready).serve()

        self.thread = threading.Thread(target=run, daemon=True)

    def __enter__(self):
        self.thread.start()
        assert self.ready.wait(30.0), "server never bound"
        return self

    def __exit__(self, *exc):
        self.thread.join(timeout=60.0)
        assert not self.thread.is_alive(), "server thread leaked"


class TestPlanValidation:
    def test_unknown_net_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="meteor"):
            tiny_plan(net_faults=({"spec": "meteor:1"},))

    def test_net_fault_target_must_be_in_roster(self):
        with pytest.raises(ValueError, match="out of range"):
            tiny_plan(net_faults=({"spec": "drop", "worker": 9},))

    def test_heartbeat_timeout_must_exceed_twice_interval(self):
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            tiny_plan(heartbeat_interval=1.0, heartbeat_timeout=2.0)

    def test_malformed_address_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            tiny_plan(address="localhost")

    def test_unknown_crash_worker_rejected(self):
        with pytest.raises(ValueError, match="nonexistent workers"):
            tiny_plan(crash_after_push={"worker-9": 1})

    def test_bad_codec_rejected(self):
        with pytest.raises(ValueError):
            tiny_plan(compression="gzip")


class TestWireResult:
    def test_round_trip_preserves_everything(self):
        from repro.ps.runtime import ThreadedTrainingResult

        original = ThreadedTrainingResult(
            wall_time=1.25,
            worker_reports=[
                WorkerReport(
                    worker_id="worker-0",
                    iterations=4,
                    samples_processed=64,
                    total_wait_time=0.5,
                    total_compute_time=0.7,
                    mean_loss=float("nan"),
                    pushed_wire_bytes=123,
                )
            ],
            server_statistics={
                "store_version": 8,
                "update_staleness": StalenessSummary(
                    count=8, mean=0.5, maximum=2, p50=0.0, p95=2.0
                ),
            },
            evaluation_times=[0.0, 1.25],
            evaluation_accuracies=[0.1, 0.6],
            evaluation_losses=[2.3, float("nan")],
            errors=["worker-1: process died"],
            events=[{"kind": "crash", "worker": "worker-1", "clock": 3}],
            profile=None,
        )
        wire = result_to_wire(original)
        import json

        json.dumps(wire)  # must already be JSON-safe
        restored = result_from_wire(wire)
        assert restored.wall_time == original.wall_time
        assert restored.errors == original.errors
        assert restored.events == original.events
        assert restored.server_statistics["update_staleness"] == (
            original.server_statistics["update_staleness"]
        )
        report = restored.worker_reports[0]
        assert report.worker_id == "worker-0"
        assert report.pushed_wire_bytes == 123
        assert np.isnan(report.mean_loss)
        assert np.isnan(restored.evaluation_losses[1])


class TestEndToEnd:
    def test_two_worker_run_reports_everything(self):
        result = TcpTrainer(tiny_plan(evaluate_every_pushes=4)).run()
        assert result.errors == []
        assert result.wall_time > 0
        assert len(result.worker_reports) == 2
        for report in result.worker_reports:
            assert report.iterations == 4
            assert report.samples_processed == 4 * 16
            assert report.pushed_wire_bytes > 0
        assert result.server_statistics["store_version"] == 8
        assert result.server_statistics["paradigm"] == "dssp"
        assert result.server_statistics["tcp_bytes_sent"] > 0
        assert result.server_statistics["tcp_bytes_received"] > 0
        # Curve: initial model at t=0, periodic evals, final model at wall.
        assert result.evaluation_times[0] == 0.0
        assert result.evaluation_times[-1] == pytest.approx(result.wall_time)
        assert len(result.evaluation_times) >= 3

    def test_codec_run_shrinks_wire_bytes(self):
        dense = TcpTrainer(tiny_plan()).run()
        coded = TcpTrainer(tiny_plan(compression="topk:0.25")).run()
        assert coded.errors == []
        assert coded.server_statistics["store_version"] == 8
        dense_pushed = sum(r.pushed_wire_bytes for r in dense.worker_reports)
        coded_pushed = sum(r.pushed_wire_bytes for r in coded.worker_reports)
        assert 0 < coded_pushed < dense_pushed


class TestElasticMembership:
    def test_worker_death_mid_run_detected_and_survived(self):
        # worker-1 dies right after its first push lands (EOF mid-protocol);
        # the heartbeat/EOF path deregisters it, the SSP bound is recomputed
        # over the survivor, and worker-0 finishes its full budget.
        result = TcpTrainer(
            tiny_plan(
                paradigm="ssp",
                paradigm_kwargs={"staleness": 2},
                crash_after_push={"worker-1": 1},
            )
        ).run()
        assert any("worker-1" in error for error in result.errors)
        by_id = {report.worker_id: report for report in result.worker_reports}
        assert by_id["worker-0"].iterations == 4
        # 4 survivor pushes plus however many worker-1 landed before dying.
        assert result.server_statistics["store_version"] >= 5

    def test_membership_flapping_leaks_nothing(self):
        # A worker repeatedly joining and leaving mid-run: every cycle must
        # deregister it from the clock table, re-bound the policy over the
        # survivor (whose pushes keep being released), and leak neither
        # copy-on-write leases nor clock-table entries.
        from repro.ps.tcp_runtime import TcpServer, _dense_frame

        plan = tiny_plan(
            paradigm="ssp",
            paradigm_kwargs={"staleness": 2},
            iterations_per_worker=64,
            wait_timeout=30.0,
        )
        ready = threading.Event()
        box = {}

        def run_server():
            def on_ready(address):
                box["address"] = address
                ready.set()

            box["server"] = server = TcpServer(plan, ready_callback=on_ready)
            box["result"] = server.serve()

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        assert ready.wait(30.0)

        def wait_until(predicate, timeout=10.0):
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if predicate():
                    return True
                time.sleep(0.01)
            return False

        def join(worker_id):
            conn = connect_tcp(box["address"], timeout=10.0)
            conn.send({"type": "join", "worker": worker_id, "codec": None})
            header, _ = conn.recv(timeout=10.0)
            assert header["type"] == "welcome"
            return conn, header

        survivor, header = join("worker-0")
        flapper, _ = join("worker-1")
        header, _ = survivor.recv(timeout=10.0)  # both present: start
        assert header["type"] == "start"
        flapper.recv(timeout=10.0)

        server = box["server"]
        store, policy = server._store, server._policy
        records = policy.clock_table._records
        size = store.flat_layouts[0][1][-1].hi
        pushes = 0

        def push_ok():
            nonlocal pushes
            survivor.send(
                {
                    "type": "push",
                    "worker": "worker-0",
                    "base_version": 0,
                    "timestamp": 0.0,
                    "loss": 1.0,
                    "samples": 16,
                    "codec": None,
                },
                (_dense_frame(0, np.zeros(size)),),
            )
            while True:
                reply, _ = survivor.recv(timeout=10.0)
                if reply["type"] == "ok":
                    break
            pushes += 1

        for cycle in range(3):
            flapper.close()
            assert wait_until(lambda: "worker-1" not in records)
            assert set(records) == {"worker-0"}
            assert server._server.worker_ids == ["worker-0"]
            # The SSP bound re-computed over the survivor: its pushes keep
            # being released even far past the flapper's last clock.
            push_ok()
            push_ok()
            # Every pull lease (join welcomes, push OKs) must drain; the
            # release runs just after the reply hits the wire, hence the
            # wait.  Growth here would be a copy-on-write leak per cycle.
            assert wait_until(lambda: store._flat._leases == 0), (
                f"leaked lease on cycle {cycle}: {store._flat._leases}"
            )
            flapper, welcome = join("worker-1")
            assert welcome["started"] is True
            # Rejoined at the survivor's clock, not at zero.
            assert wait_until(lambda: "worker-1" in records)
            assert records["worker-1"].clock == pushes

        flapper.close()
        assert wait_until(lambda: set(records) == {"worker-0"})
        survivor.close()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        result = box["result"]
        assert result.server_statistics["store_version"] == pushes

    def test_duplicate_join_then_abort_then_late_join(self):
        # Protocol-level race coverage, deterministic because we are the
        # workers: (1) a second 'worker-0' is rejected while the first is
        # alive; (2) an expected worker dying before the start barrier
        # aborts the run; (3) a join racing the abort gets an explicit
        # reject during the linger window, not a connection refused.
        plan = tiny_plan(num_workers=2, wait_timeout=10.0)
        with ServerThread(plan) as server:
            first = connect_tcp(server.address, timeout=10.0)
            first.send({"type": "join", "worker": "worker-0", "codec": None})
            header, frames = first.recv(timeout=10.0)
            assert header["type"] == "welcome"
            assert header["clock"] == 0 and header["started"] is False
            assert len(frames) >= 1  # initial weights ride along

            duplicate = connect_tcp(server.address, timeout=10.0)
            duplicate.send({"type": "join", "worker": "worker-0", "codec": None})
            header, _ = duplicate.recv(timeout=10.0)
            assert header["type"] == "reject"
            assert "duplicate" in header["reason"]
            duplicate.close()

            # EOF from an expected worker before the start barrier: abort.
            first.close()
            deadline = time.monotonic() + 5.0
            late = None
            while time.monotonic() < deadline:
                late = connect_tcp(server.address, timeout=5.0)
                late.send({"type": "join", "worker": "worker-7", "codec": None})
                header, _ = late.recv(timeout=10.0)
                if header["type"] == "reject" and "abort" in header["reason"]:
                    break
                late.close()  # raced ahead of the EOF; try again
            assert header["type"] == "reject"
            assert "abort" in header["reason"]
            late.close()
        assert server.result is not None
        assert any("died before start" in error for error in server.result.errors)


class TestFaultInjection:
    def test_injected_crash_rejoins_through_elastic_membership(self):
        # worker-1's fault plan drops its socket after 2 pushes and rejoins
        # one heartbeat period later; the slowed-down survivor keeps the run
        # alive long enough that the rejoin lands mid-run.  Both the crash
        # and the rejoin must come out as structured events, and the
        # rejoined worker must still complete its full push budget.
        result = TcpTrainer(
            tiny_plan(
                paradigm="ssp",
                paradigm_kwargs={"staleness": 2},
                iterations_per_worker=8,
                heartbeat_interval=0.2,
                heartbeat_timeout=1.0,
                slowdowns={"worker-0": 0.2},
                faults=(
                    {
                        "worker": 1,
                        "kind": "crash",
                        "after_clock": 2,
                        "rejoin_after": 1,
                    },
                ),
            )
        ).run()
        kinds = [event["kind"] for event in result.events]
        assert "crash" in kinds
        assert "rejoin" in kinds
        crash = next(e for e in result.events if e["kind"] == "crash")
        assert crash["worker"] == "worker-1"
        by_id = {report.worker_id: report for report in result.worker_reports}
        assert by_id["worker-0"].iterations == 8
        # The rejoiner resumes at the cluster's slowest clock, which may be
        # past its own crash point — it completes the *remaining* budget.
        assert 4 <= by_id["worker-1"].iterations <= 8
        assert by_id["worker-1"].samples_processed == by_id["worker-1"].iterations * 16


class TestGracefulRestart:
    def _spawn_server(self, ctx, plan):
        ready_recv, ready_send = ctx.Pipe(duplex=False)
        process = ctx.Process(target=_serve_entry, args=(plan, ready_send), daemon=True)
        process.start()
        ready_send.close()
        assert ready_recv.poll(30.0), "server never reported its address"
        address = ready_recv.recv()
        ready_recv.close()
        return process, address

    def test_sigterm_restart_resumes_bit_for_bit(self, tmp_path):
        # SIGTERM mid-run → checkpoint (weights, momentum, worker clocks) →
        # new server on the same port → worker reconnects with backoff and
        # replays deterministically.  On the 'none' codec the final model
        # must be byte-identical to an uninterrupted run of the same plan.
        ctx = multiprocessing.get_context("spawn" if os.name == "nt" else "fork")
        base = dict(
            paradigm="bsp",
            paradigm_kwargs={},
            num_workers=1,
            iterations_per_worker=6,
            # Slow enough that the SIGTERM below lands mid-run: the whole
            # budget takes ~2.4s and the signal arrives at ~1s.
            slowdowns={"worker-0": 0.4},
            checkpoint_every_pushes=1,
            wait_timeout=30.0,
        )

        reference = tiny_plan(
            checkpoint_path=str(tmp_path / "reference.npz"), **base
        )
        result = TcpTrainer(reference, context=ctx).run()
        assert result.errors == []

        interrupted = tiny_plan(
            checkpoint_path=str(tmp_path / "interrupted.npz"), **base
        )
        server, address = self._spawn_server(ctx, interrupted)
        worker = ctx.Process(
            target=_worker_entry, args=(interrupted, 0, address), daemon=True
        )
        worker.start()
        time.sleep(1.0)  # a few pushes land, then the server dies
        os.kill(server.pid, signal.SIGTERM)
        server.join(timeout=30.0)
        assert server.exitcode == 0

        relaunched = dataclasses.replace(interrupted, address=address)
        server2, address2 = self._spawn_server(ctx, relaunched)
        assert address2 == address  # SO_REUSEADDR: same port, worker finds it
        server2.join(timeout=60.0)
        worker.join(timeout=60.0)
        assert server2.exitcode == 0 and worker.exitcode == 0

        with np.load(tmp_path / "reference.npz") as ref, np.load(
            tmp_path / "interrupted.npz"
        ) as got:
            ref_arrays = {k: ref[k] for k in ref.files if "::" in k}
            got_arrays = {k: got[k] for k in got.files if "::" in k}
            assert set(ref_arrays) == set(got_arrays)
            for key, value in ref_arrays.items():
                assert np.array_equal(value, got_arrays[key]), key


def _assert_checkpoints_match(reference_path, chaos_path):
    """Final model weights in two checkpoints must be byte-identical."""
    with np.load(reference_path) as ref, np.load(chaos_path) as got:
        ref_arrays = {k: ref[k] for k in ref.files if "::" in k}
        got_arrays = {k: got[k] for k in got.files if "::" in k}
        assert set(ref_arrays) == set(got_arrays)
        for key, value in ref_arrays.items():
            assert np.array_equal(value, got_arrays[key]), key


class TestExactlyOnce:
    @staticmethod
    def _seed_with_phase(phase: str) -> int:
        # The drop phase (torn mid-frame vs delivered-then-torn) is drawn
        # from the worker's chaos stream, so probing seeds pins the test to
        # a specific phase without touching the production draw order.
        from repro.ps.netfaults import NetFaultSchedule, parse_net_fault_specs

        plan = parse_net_fault_specs([{"spec": "drop"}], ["worker-0"])
        for seed in range(256):
            if NetFaultSchedule(plan, "worker-0", seed).next_push(0).drop == phase:
                return seed
        pytest.fail(f"no seed under 256 yields a {phase!r} drop")

    @pytest.mark.parametrize("phase", ["torn", "sent"])
    def test_dropped_push_replays_bit_for_bit(self, tmp_path, phase):
        # drop:1.0 tears worker-0's first push.  'torn' loses the push
        # (recompute + resend); 'sent' applies it but loses the OK (the
        # watermark hands back clock k+1 so nothing is applied twice).
        # Either way the final model must be byte-identical to a clean run.
        seed = self._seed_with_phase(phase)
        base = dict(
            paradigm="bsp",
            paradigm_kwargs={},
            num_workers=1,
            iterations_per_worker=5,
            seed=seed,
            checkpoint_every_pushes=1,
            wait_timeout=30.0,
        )
        clean = tiny_plan(checkpoint_path=str(tmp_path / "clean.npz"), **base)
        clean_result = TcpTrainer(clean).run()
        assert clean_result.errors == []
        assert clean_result.events == []  # chaos-free runs stay event-free

        chaos = tiny_plan(
            checkpoint_path=str(tmp_path / "chaos.npz"),
            net_faults=({"spec": "drop"},),
            **base,
        )
        chaos_result = TcpTrainer(chaos).run()
        # The torn connection is injected chaos, not a failure.
        assert chaos_result.errors == []
        kinds = [event["kind"] for event in chaos_result.events]
        assert "net_drop" in kinds
        assert "connection_lost" in kinds
        assert "reconnect" in kinds
        report = chaos_result.worker_reports[0]
        assert report.samples_processed == report.iterations * 16
        assert chaos_result.server_statistics["store_version"] == 5
        _assert_checkpoints_match(tmp_path / "clean.npz", tmp_path / "chaos.npz")

    def test_retransmitted_push_applied_exactly_once(self):
        # Protocol-level determinism: we are the worker, so the retransmit
        # race (server applied seq=0 but the OK never arrived) is exact.
        # The second seq=0 push must ack without touching the weights.
        from repro.ps.tcp_runtime import _dense_frame

        plan = tiny_plan(
            paradigm="ssp",
            paradigm_kwargs={"staleness": 2},
            num_workers=1,
            iterations_per_worker=8,
            wait_timeout=10.0,
        )
        ready = threading.Event()
        box = {}

        def run_server():
            def on_ready(address):
                box["address"] = address
                ready.set()

            box["server"] = server = TcpServer(plan, ready_callback=on_ready)
            box["result"] = server.serve()

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        assert ready.wait(30.0)

        conn = connect_tcp(box["address"], timeout=10.0)
        conn.send({"type": "join", "worker": "worker-0", "codec": None})
        header, _ = conn.recv(timeout=10.0)
        assert header["type"] == "welcome"
        if not header["started"]:
            header, _ = conn.recv(timeout=10.0)
            assert header["type"] == "start"

        server = box["server"]
        size = server._store.flat_layouts[0][1][-1].hi

        def push(seq):
            conn.send(
                {
                    "type": "push",
                    "worker": "worker-0",
                    "base_version": 0,
                    "timestamp": 0.0,
                    "loss": 1.0,
                    "samples": 16,
                    "codec": None,
                    "seq": seq,
                },
                (_dense_frame(0, np.full(size, 0.125)),),
            )
            while True:
                reply, _ = conn.recv(timeout=10.0)
                if reply["type"] == "ok":
                    return reply

        push(seq=0)
        assert server._store.version == 1
        applied_once = {k: v.copy() for k, v in server._store.snapshot().items()}

        push(seq=0)  # retransmission: acked, weights untouched
        assert server._store.version == 1
        after_duplicate = server._store.snapshot()
        assert all(
            np.array_equal(applied_once[key], after_duplicate[key])
            for key in applied_once
        )
        assert server._push_watermarks["worker-0"] == 0

        push(seq=1)  # progress resumes past the duplicate
        assert server._store.version == 2
        assert server._push_watermarks["worker-0"] == 1

        conn.close()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        duplicates = [
            event
            for event in box["result"].events
            if event["kind"] == "duplicate_push"
        ]
        assert duplicates == [
            {"kind": "duplicate_push", "worker": "worker-0", "seq": 0, "watermark": 0}
        ]


class TestSupervisedRestart:
    def test_kill9_restart_resumes_bit_for_bit(self, tmp_path):
        # The watchdog path end to end: SIGKILL the server child mid-run,
        # the supervisor relaunches it on the same address from the latest
        # atomic checkpoint, the worker rides its reconnect budget, and the
        # final model is byte-identical to an uninterrupted run.
        from repro.ps.tcp_runtime import TcpSupervisor

        ctx = multiprocessing.get_context("spawn" if os.name == "nt" else "fork")
        base = dict(
            paradigm="bsp",
            paradigm_kwargs={},
            num_workers=1,
            iterations_per_worker=6,
            slowdowns={"worker-0": 0.4},
            checkpoint_every_pushes=1,
            wait_timeout=30.0,
        )

        reference = tiny_plan(
            checkpoint_path=str(tmp_path / "reference.npz"), **base
        )
        result = TcpTrainer(reference, context=ctx).run()
        assert result.errors == []

        supervised = tiny_plan(
            checkpoint_path=str(tmp_path / "supervised.npz"), **base
        )
        ready = threading.Event()
        box = {}

        def on_ready(address):
            box["address"] = address
            ready.set()

        supervisor = TcpSupervisor(
            supervised, context=ctx, max_restarts=3, ready_callback=on_ready
        )

        def run_supervisor():
            box["result"] = supervisor.run()

        thread = threading.Thread(target=run_supervisor, daemon=True)
        thread.start()
        assert ready.wait(30.0), "supervised server never bound"

        worker = ctx.Process(
            target=_worker_entry, args=(supervised, 0, box["address"]), daemon=True
        )
        worker.start()

        # Wait for the first atomic checkpoint so the restart has state to
        # restore, let a couple more pushes land, then hard-kill the child.
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline and not os.path.exists(
            supervised.checkpoint_path
        ):
            time.sleep(0.05)
        assert os.path.exists(supervised.checkpoint_path)
        time.sleep(0.5)
        os.kill(supervisor.server_pid, signal.SIGKILL)

        worker.join(timeout=60.0)
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "supervisor never returned"
        assert worker.exitcode == 0

        final = box["result"]
        assert final is not None
        assert final.errors == []
        assert supervisor.restarts == 1
        kinds = [event["kind"] for event in final.events]
        assert "server_restart" in kinds
        assert "reconnect" in kinds
        assert final.server_statistics["store_version"] == 6
        _assert_checkpoints_match(
            tmp_path / "reference.npz", tmp_path / "supervised.npz"
        )

    def test_supervisor_requires_checkpoint_path(self):
        from repro.ps.tcp_runtime import TcpSupervisor

        with pytest.raises(ValueError, match="checkpoint_path"):
            TcpSupervisor(tiny_plan())
