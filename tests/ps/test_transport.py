"""Unit tests for the transport layer (repro.ps.transport).

The TCP framing tests run over a local ``socketpair`` — real sockets, no
listener — so they exercise the exact byte path of the tcp backend
(length prefix, aligned JSON envelope, ``write_encoded`` frames) in
microseconds.
"""

import multiprocessing
import socket

import numpy as np
import pytest

from repro.ps.compression import EncodedShard, decode_shard, make_codec
from repro.ps.transport import (
    ConnectionClosed,
    PipeConnection,
    TcpConnection,
    available_transports,
    format_address,
    parse_address,
    validate_transport,
)


def dense(shard: int, array: np.ndarray) -> EncodedShard:
    flat = np.ascontiguousarray(array).reshape(-1)
    return EncodedShard(shard=shard, size=flat.size, scheme="dense", arrays=(flat,))


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    a, b = TcpConnection(left), TcpConnection(right)
    yield a, b
    a.close()
    b.close()


class TestRegistry:
    def test_registry_lists_all_three(self):
        assert available_transports() == ("shm", "pipe", "tcp")

    def test_validate_normalizes(self):
        assert validate_transport("  TCP ") == "tcp"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="carrier-pigeon"):
            validate_transport("carrier-pigeon")

    def test_allowed_subset_enforced(self):
        assert validate_transport("pipe", allowed=("shm", "pipe")) == "pipe"
        with pytest.raises(ValueError, match="not supported here"):
            validate_transport("tcp", allowed=("shm", "pipe"))


class TestAddresses:
    def test_round_trip(self):
        assert parse_address(format_address("10.0.0.7", 5555)) == ("10.0.0.7", 5555)

    def test_ephemeral_port_zero(self):
        assert parse_address("127.0.0.1:0") == ("127.0.0.1", 0)

    def test_empty_host_defaults_to_loopback(self):
        assert parse_address(":8000") == ("127.0.0.1", 8000)

    @pytest.mark.parametrize("bad", ["localhost", "host:port", "host:70000", 1234])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestTcpFraming:
    def test_header_only_round_trip(self, pair):
        a, b = pair
        a.send({"type": "heartbeat", "worker": "worker-3"})
        header, frames = b.recv(timeout=5.0)
        assert header == {"type": "heartbeat", "worker": "worker-3"}
        assert frames == ()

    def test_dense_frames_round_trip(self, pair):
        a, b = pair
        rng = np.random.default_rng(0)
        payloads = {0: rng.standard_normal(37), 1: rng.standard_normal(256)}
        a.send(
            {"type": "push", "base_version": 9},
            tuple(dense(shard, array) for shard, array in payloads.items()),
        )
        header, frames = b.recv(timeout=5.0)
        assert header["base_version"] == 9
        assert [frame.shard for frame in frames] == [0, 1]
        for frame in frames:
            np.testing.assert_array_equal(decode_shard(frame), payloads[frame.shard])

    def test_codec_frames_survive_the_wire(self, pair):
        a, b = pair
        codec = make_codec("topk:0.25")
        gradient = np.linspace(-1.0, 1.0, 64)
        encoded = codec.encode(0, gradient.copy())
        a.send({"type": "push", "codec": "topk:0.25"}, (encoded,))
        _, frames = b.recv(timeout=5.0)
        assert frames[0].scheme == encoded.scheme
        np.testing.assert_array_equal(decode_shard(frames[0]), decode_shard(encoded))

    def test_messages_preserve_order_and_boundaries(self, pair):
        a, b = pair
        for index in range(20):
            a.send({"seq": index}, (dense(index, np.full(index + 1, float(index))),))
        for index in range(20):
            header, frames = b.recv(timeout=5.0)
            assert header["seq"] == index
            assert frames[0].shard == index
            assert frames[0].size == index + 1

    def test_read_ready_drains_coalesced_messages(self, pair):
        a, b = pair
        for index in range(5):
            a.send({"seq": index})
        collected = []
        b._sock.settimeout(5.0)
        while len(collected) < 5:
            collected.extend(b.read_ready())
        assert [header["seq"] for header, _ in collected] == list(range(5))

    def test_peer_close_raises_connection_closed(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionClosed):
            b.recv(timeout=5.0)

    def test_eof_mid_frame_is_closed_not_torn(self):
        # A crashed worker's last message may be half-sent: the receiver
        # must raise, never deliver a truncated frame.
        left, right = socket.socketpair()
        a, b = TcpConnection(left), TcpConnection(right)
        message = TcpConnection._encode({"type": "push"}, (dense(0, np.ones(1000)),))
        left.sendall(bytes(message[: len(message) // 2]))
        left.close()
        with pytest.raises(ConnectionClosed):
            b.recv(timeout=5.0)
        b.close()

    def test_recv_timeout_raises(self, pair):
        _, b = pair
        with pytest.raises(TimeoutError):
            b.recv(timeout=0.05)

    def test_byte_counters_match_across_ends(self, pair):
        a, b = pair
        sent = a.send({"type": "push"}, (dense(0, np.arange(16.0)),))
        b.recv(timeout=5.0)
        assert a.bytes_sent == sent == b.bytes_received

    def test_frames_are_eight_byte_aligned(self):
        # Alignment is what makes zero-copy float64 views legal on receive.
        message = TcpConnection._encode(
            {"k": "x" * 13}, (dense(0, np.ones(3)), dense(1, np.ones(5)))
        )
        header, frames = TcpConnection._decode(bytes(message[8:]))
        for frame in frames:
            assert all(array.nbytes % 8 == 0 or array.dtype == np.float64
                       for array in frame.arrays)
        np.testing.assert_array_equal(decode_shard(frames[1]), np.ones(5))


class TestPipeConnection:
    def test_round_trip_and_eof(self):
        left, right = multiprocessing.Pipe()
        a, b = PipeConnection(left), PipeConnection(right)
        a.send({"type": "ok", "version": 3}, frames={"w": np.ones(4)})
        header, frames = b.recv()
        assert header == {"type": "ok", "version": 3}
        np.testing.assert_array_equal(frames["w"], np.ones(4))
        a.close()
        with pytest.raises(ConnectionClosed):
            b.recv()
        b.close()
