"""Tests for the worker logic, the threaded runtime and the coordinator."""

import numpy as np
import pytest

from repro.core.factory import make_policy
from repro.data.loader import MiniBatchLoader
from repro.metrics.accuracy import evaluate_model
from repro.models import mlp
from repro.nn.losses import SoftmaxCrossEntropy
from repro.optim.sgd import SGD
from repro.ps.coordinator import DistributedTrainingConfig, train_distributed
from repro.ps.runtime import ThreadedTrainer
from repro.ps.server import ParameterServer
from repro.ps.sharding import make_store
from repro.ps.worker import Worker


def build_model(rng, input_dim=192, num_classes=4):
    return mlp(input_dim=input_dim, hidden_dims=(16,), num_classes=num_classes, rng=rng)


def make_worker(dataset, worker_id="w0", seed=0, micro_batches=1):
    rng = np.random.default_rng(seed)
    model = build_model(rng, input_dim=dataset.inputs.shape[1])
    loader = MiniBatchLoader(dataset, batch_size=16, rng=np.random.default_rng(seed + 1))
    return Worker(
        worker_id=worker_id,
        model=model,
        loader=loader,
        loss_fn=SoftmaxCrossEntropy(),
        micro_batches=micro_batches,
    )


class TestWorker:
    def test_compute_gradients_returns_all_parameters(self, tiny_flat_datasets):
        train, _ = tiny_flat_datasets
        worker = make_worker(train)
        computation = worker.compute_gradients()
        assert set(computation.gradients) == set(dict(worker.model.named_parameters()))
        assert computation.samples == 16
        assert np.isfinite(computation.loss)
        assert worker.iterations == 1

    def test_micro_batches_average_gradients(self, tiny_flat_datasets):
        train, _ = tiny_flat_datasets
        worker = make_worker(train, micro_batches=3)
        computation = worker.compute_gradients()
        assert computation.samples == 48
        assert worker.samples_processed == 48

    def test_load_weights_updates_version_and_values(self, tiny_flat_datasets):
        train, _ = tiny_flat_datasets
        worker = make_worker(train)
        new_weights = {
            name: np.zeros_like(parameter.data)
            for name, parameter in worker.model.named_parameters()
        }
        worker.load_weights(new_weights, version=7)
        assert worker.local_version == 7
        assert all(np.all(p.data == 0) for _, p in worker.model.named_parameters())

    def test_load_weights_rejects_unknown_names(self, tiny_flat_datasets):
        train, _ = tiny_flat_datasets
        worker = make_worker(train)
        with pytest.raises(KeyError):
            worker.load_weights({"nope": np.zeros(3)}, version=1)

    def test_gradient_base_version_tracks_pull(self, tiny_flat_datasets):
        train, _ = tiny_flat_datasets
        worker = make_worker(train)
        snapshot = {
            name: parameter.data.copy()
            for name, parameter in worker.model.named_parameters()
        }
        worker.load_weights(snapshot, version=3)
        assert worker.compute_gradients().base_version == 3

    def test_loss_history_statistics(self, tiny_flat_datasets):
        train, _ = tiny_flat_datasets
        worker = make_worker(train)
        assert np.isnan(worker.mean_loss)
        worker.compute_gradients()
        worker.compute_gradients()
        assert np.isfinite(worker.mean_loss)
        assert np.isfinite(worker.recent_loss())

    def test_invalid_micro_batches(self, tiny_flat_datasets):
        train, _ = tiny_flat_datasets
        with pytest.raises(ValueError):
            make_worker(train, micro_batches=0)

    def test_use_workspace_enables_model_and_loss_arenas(self, tiny_flat_datasets):
        train, _ = tiny_flat_datasets
        rng = np.random.default_rng(0)
        model = build_model(rng, input_dim=train.inputs.shape[1])
        loader = MiniBatchLoader(train, batch_size=16, rng=np.random.default_rng(1))
        worker = Worker(
            worker_id="w0",
            model=model,
            loader=loader,
            loss_fn=SoftmaxCrossEntropy(),
            use_workspace=True,
        )
        assert worker.model.workspace_enabled
        assert worker.loss_fn._workspace is not None
        # Steady state: iterating allocates no new workspace buffers.
        worker.compute_gradients()
        baseline = worker.model.workspace_stats()["allocations"]
        worker.compute_gradients()
        assert worker.model.workspace_stats()["allocations"] == baseline

    def test_workspace_off_by_default_on_direct_construction(self, tiny_flat_datasets):
        train, _ = tiny_flat_datasets
        worker = make_worker(train)
        assert not worker.model.workspace_enabled


def build_threaded_trainer(
    train, test, paradigm="bsp", num_workers=2, iterations=4,
    store_layout="monolithic", **policy_kwargs,
):
    seed_rng = np.random.default_rng(0)
    global_model = build_model(seed_rng, input_dim=train.inputs.shape[1])
    store = make_store(
        initial_weights={name: p.data for name, p in global_model.named_parameters()},
        initial_buffers=global_model.buffers(),
        num_shards=2 if store_layout == "sharded" else 1,
    )
    server = ParameterServer(
        store=store, optimizer=SGD(learning_rate=0.05, momentum=0.9),
        policy=make_policy(paradigm, **policy_kwargs),
    )
    workers = []
    for index in range(num_workers):
        worker = make_worker(train, worker_id=f"w{index}", seed=index + 1)
        worker.model.load_state_dict(global_model.state_dict())
        server.register_worker(f"w{index}")
        workers.append(worker)

    eval_model = build_model(np.random.default_rng(9), input_dim=train.inputs.shape[1])

    def evaluate(state):
        eval_model.load_state_dict(dict(state))
        return evaluate_model(eval_model, test, batch_size=32)

    return ThreadedTrainer(
        server=server,
        workers=workers,
        iterations_per_worker=iterations,
        evaluate_fn=evaluate,
        evaluate_every_pushes=4,
        wait_timeout=30.0,
    )


class TestThreadedTrainer:
    @pytest.mark.parametrize(
        "paradigm,kwargs",
        [
            ("bsp", {}),
            ("asp", {}),
            ("ssp", {"staleness": 2}),
            ("dssp", {"s_lower": 1, "s_upper": 4}),
        ],
    )
    @pytest.mark.parametrize("store_layout", ["monolithic", "sharded"])
    def test_runs_to_completion_under_every_paradigm(
        self, tiny_flat_datasets, paradigm, kwargs, store_layout
    ):
        train, test = tiny_flat_datasets
        trainer = build_threaded_trainer(
            train, test, paradigm=paradigm, store_layout=store_layout, **kwargs
        )
        result = trainer.run()
        assert result.errors == []
        assert result.wall_time > 0
        assert trainer.server.store.version == 2 * 4
        assert all(report.iterations == 4 for report in result.worker_reports)

    def test_evaluations_recorded(self, tiny_flat_datasets):
        train, test = tiny_flat_datasets
        trainer = build_threaded_trainer(train, test, paradigm="asp", iterations=6)
        result = trainer.run()
        assert len(result.evaluation_accuracies) >= 1
        assert 0.0 <= result.best_accuracy <= 1.0
        assert result.final_accuracy == result.evaluation_accuracies[-1]

    def test_slowdown_increases_waiting_of_fast_worker(self, tiny_flat_datasets):
        train, test = tiny_flat_datasets
        trainer = build_threaded_trainer(train, test, paradigm="bsp", iterations=5)
        trainer.slowdowns = {"w1": 0.03}
        result = trainer.run()
        waits = {report.worker_id: report.total_wait_time for report in result.worker_reports}
        assert waits["w0"] > waits["w1"]

    def test_training_reduces_loss(self, tiny_flat_datasets):
        train, test = tiny_flat_datasets
        trainer = build_threaded_trainer(train, test, paradigm="bsp", iterations=20)
        result = trainer.run()
        assert result.errors == []
        losses = [report.mean_loss for report in result.worker_reports]
        assert all(np.isfinite(losses))
        # The model should fit the tiny 4-class problem far better than chance.
        assert result.best_accuracy > 0.4

    def test_validation_of_arguments(self, tiny_flat_datasets):
        train, test = tiny_flat_datasets
        trainer = build_threaded_trainer(train, test)
        with pytest.raises(ValueError):
            ThreadedTrainer(
                server=trainer.server, workers=trainer.workers, iterations_per_worker=0
            )
        stranger = make_worker(train, worker_id="ghost")
        with pytest.raises(ValueError):
            ThreadedTrainer(
                server=trainer.server, workers=[stranger], iterations_per_worker=1
            )


class TestCoordinator:
    @pytest.mark.parametrize("use_workspace", [True, False])
    def test_assemble_training_honours_use_workspace(
        self, tiny_flat_datasets, use_workspace
    ):
        from repro.ps.coordinator import assemble_training

        train, test = tiny_flat_datasets
        config = DistributedTrainingConfig(
            paradigm="asp",
            paradigm_kwargs={},
            num_workers=2,
            iterations_per_worker=2,
            batch_size=16,
            use_workspace=use_workspace,
        )
        trainer = assemble_training(
            config,
            model_builder=lambda rng: build_model(rng, input_dim=train.inputs.shape[1]),
            train_dataset=train,
            test_dataset=test,
        )
        for worker in trainer.workers:
            assert worker.model.workspace_enabled is use_workspace
            assert (worker.loss_fn._workspace is not None) is use_workspace
        result = trainer.run()
        assert result.errors == []

    def test_train_distributed_end_to_end(self, tiny_flat_datasets):
        train, test = tiny_flat_datasets
        config = DistributedTrainingConfig(
            paradigm="dssp",
            paradigm_kwargs={"s_lower": 1, "s_upper": 4},
            num_workers=2,
            iterations_per_worker=5,
            batch_size=16,
            learning_rate=0.05,
            evaluate_every_pushes=5,
        )
        with pytest.warns(DeprecationWarning, match="run_experiment"):
            result = train_distributed(
                config,
                model_builder=lambda rng: build_model(rng, input_dim=train.inputs.shape[1]),
                train_dataset=train,
                test_dataset=test,
            )
        assert result.errors == []
        assert len(result.worker_reports) == 2
        assert len(result.evaluation_accuracies) >= 1

    def test_train_distributed_with_sharded_float32_store(self, tiny_flat_datasets):
        train, test = tiny_flat_datasets
        config = DistributedTrainingConfig(
            paradigm="ssp",
            paradigm_kwargs={"staleness": 2},
            num_workers=2,
            iterations_per_worker=5,
            batch_size=16,
            learning_rate=0.05,
            evaluate_every_pushes=5,
            num_shards=4,
            dtype="float32",
        )
        with pytest.warns(DeprecationWarning, match="run_experiment"):
            result = train_distributed(
                config,
                model_builder=lambda rng: build_model(rng, input_dim=train.inputs.shape[1]),
                train_dataset=train,
                test_dataset=test,
            )
        assert result.errors == []
        assert result.server_statistics["store_version"] == 2 * 5
        assert len(result.evaluation_accuracies) >= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DistributedTrainingConfig(num_workers=0)
        with pytest.raises(ValueError):
            DistributedTrainingConfig(iterations_per_worker=0)
        with pytest.raises(ValueError):
            DistributedTrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            DistributedTrainingConfig(num_shards=0)

    def test_config_rejects_bad_paradigm_kwargs_at_construction(self):
        # Fail fast: the typo'd kwarg must not survive until mid-run.
        with pytest.raises(TypeError):
            DistributedTrainingConfig(paradigm="ssp", paradigm_kwargs={"stalness": 3})
        with pytest.raises(ValueError):
            DistributedTrainingConfig(paradigm="gossip", paradigm_kwargs={})

    def test_config_rejects_slowdowns_for_nonexistent_workers(self):
        with pytest.raises(ValueError, match="nonexistent workers"):
            DistributedTrainingConfig(num_workers=2, slowdowns={"worker-7": 0.01})
        # Valid ids are accepted.
        config = DistributedTrainingConfig(num_workers=2, slowdowns={"worker-1": 0.01})
        assert config.slowdowns == {"worker-1": 0.01}
