"""Tests for the simulation primitives: clock, events, profiles, network,
cluster, workload cost model and traces."""

import numpy as np
import pytest

from repro.models import downsized_alexnet, resnet20
from repro.simulation.clock import VirtualClock
from repro.simulation.cluster import ClusterSpec, WorkerSpec, heterogeneous_cluster, homogeneous_cluster
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.network import GIGABIT_ETHERNET, INFINIBAND_EDR, NetworkModel
from repro.simulation.profiles import GPU_CATALOGUE, DeviceProfile, get_device_profile
from repro.simulation.trace import SimulationTrace
from repro.simulation.workload import IterationTimeModel, estimate_model_cost


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        clock.advance_to(5.0)
        clock.advance_by(2.5)
        assert clock.now == 7.5

    def test_cannot_go_backwards(self):
        clock = VirtualClock(start=3.0)
        with pytest.raises(ValueError):
            clock.advance_to(2.0)
        with pytest.raises(ValueError):
            clock.advance_by(-1.0)
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(Event(time=2.0, kind=EventKind.PUSH_ARRIVAL, worker_id="b"))
        queue.push(Event(time=1.0, kind=EventKind.PUSH_ARRIVAL, worker_id="a"))
        assert queue.peek().worker_id == "a"
        assert queue.pop().worker_id == "a"
        assert queue.pop().worker_id == "b"

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        queue.push(Event(time=1.0, kind=EventKind.PUSH_ARRIVAL, worker_id="first"))
        queue.push(Event(time=1.0, kind=EventKind.PUSH_ARRIVAL, worker_id="second"))
        assert queue.pop().worker_id == "first"

    def test_empty_queue_errors(self):
        queue = EventQueue()
        assert not queue
        with pytest.raises(IndexError):
            queue.pop()
        with pytest.raises(IndexError):
            queue.peek()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(Event(time=-1.0, kind=EventKind.EVALUATION))


class TestDeviceProfiles:
    def test_catalogue_contains_paper_gpus(self):
        assert {"p100", "gtx1080ti", "gtx1060"} <= set(GPU_CATALOGUE)
        assert get_device_profile("P100").name == "p100"
        with pytest.raises(KeyError):
            get_device_profile("tpu")

    def test_relative_speed_matches_peak_flops(self):
        fast = get_device_profile("gtx1080ti")
        slow = get_device_profile("gtx1060")
        flops = 1e12
        assert slow.compute_time(flops) > fast.compute_time(flops)

    def test_compute_time_includes_overhead(self):
        profile = DeviceProfile(name="x", peak_flops=1e12, per_iteration_overhead=0.5, jitter=0)
        assert profile.compute_time(0.0) == pytest.approx(0.5)

    def test_jitter_is_reproducible_with_rng(self):
        profile = get_device_profile("p100")
        a = profile.compute_time(1e9, rng=np.random.default_rng(0))
        b = profile.compute_time(1e9, rng=np.random.default_rng(0))
        c = profile.compute_time(1e9, rng=np.random.default_rng(1))
        assert a == b
        assert a != c

    def test_scaled_profile(self):
        base = get_device_profile("p100")
        faster = base.scaled(2.0)
        assert faster.sustained_flops == pytest.approx(2 * base.sustained_flops)
        with pytest.raises(ValueError):
            base.scaled(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="x", peak_flops=0)
        with pytest.raises(ValueError):
            DeviceProfile(name="x", peak_flops=1e12, efficiency=0.0)
        with pytest.raises(ValueError):
            get_device_profile("p100").compute_time(-1.0)


class TestNetworkModels:
    def test_transfer_time_scales_with_bytes(self):
        assert GIGABIT_ETHERNET.transfer_time(10_000_000) > GIGABIT_ETHERNET.transfer_time(1_000)

    def test_round_trip_is_two_transfers(self):
        model = NetworkModel(name="x", latency=0.001, bandwidth_bytes_per_second=1e6, jitter=0)
        assert model.round_trip_time(1_000_000) == pytest.approx(2 * model.transfer_time(1_000_000))

    def test_infiniband_faster_than_ethernet(self):
        payload = 5_000_000
        assert INFINIBAND_EDR.transfer_time(payload) < GIGABIT_ETHERNET.transfer_time(payload)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(name="x", latency=-1, bandwidth_bytes_per_second=1)
        with pytest.raises(ValueError):
            NetworkModel(name="x", latency=0, bandwidth_bytes_per_second=0)
        with pytest.raises(ValueError):
            GIGABIT_ETHERNET.transfer_time(-5)


class TestClusterSpecs:
    def test_homogeneous_cluster_matches_paper_setup(self):
        cluster = homogeneous_cluster(num_workers=4, gpus_per_worker=4)
        assert cluster.num_workers == 4
        assert not cluster.is_heterogeneous
        assert all(spec.device.name == "p100" for spec in cluster.workers)
        assert all(spec.gpus_per_worker == 4 for spec in cluster.workers)

    def test_heterogeneous_cluster_default_devices(self):
        cluster = heterogeneous_cluster()
        assert cluster.is_heterogeneous
        assert [spec.device.name for spec in cluster.workers] == ["gtx1080ti", "gtx1060"]
        assert cluster.speed_ratio() > 1.5

    def test_worker_lookup(self):
        cluster = homogeneous_cluster(num_workers=2)
        assert cluster.worker("worker-1").worker_id == "worker-1"
        with pytest.raises(KeyError):
            cluster.worker("worker-9")

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(workers=())
        spec = homogeneous_cluster(num_workers=1).workers[0]
        with pytest.raises(ValueError):
            ClusterSpec(workers=(spec, spec))
        with pytest.raises(ValueError):
            homogeneous_cluster(num_workers=0)
        with pytest.raises(ValueError):
            heterogeneous_cluster(devices=[])
        with pytest.raises(ValueError):
            WorkerSpec(worker_id="w", device=spec.device, network=spec.network, gpus_per_worker=0)


class TestWorkloadCostModel:
    def test_alexnet_cost_is_positive_and_fc_heavy(self):
        model = downsized_alexnet(num_classes=10, image_size=32, width=32, fc_width=256)
        cost = estimate_model_cost(model, (3, 32, 32))
        assert cost.flops_per_sample > 0
        assert cost.num_parameters == model.num_parameters()
        assert cost.parameter_bytes == 4 * cost.num_parameters

    def test_resnet_has_higher_compute_to_communication_ratio_than_alexnet(self):
        """The structural fact behind the paper's Section V-C discussion."""
        alexnet = downsized_alexnet(num_classes=10, image_size=32, width=32, fc_width=256)
        resnet = resnet20(num_classes=100, base_width=16)
        alexnet_cost = estimate_model_cost(alexnet, (3, 32, 32))
        resnet_cost = estimate_model_cost(resnet, (3, 32, 32))
        assert (
            resnet_cost.flops_per_sample / resnet_cost.parameter_bytes
            > alexnet_cost.flops_per_sample / alexnet_cost.parameter_bytes
        )

    def test_iteration_time_model_components(self):
        model = downsized_alexnet(num_classes=10, image_size=32, width=32, fc_width=256)
        cost = estimate_model_cost(model, (3, 32, 32))
        cluster = homogeneous_cluster(num_workers=1, gpus_per_worker=4)
        time_model = IterationTimeModel(cost, batch_size=128)
        spec = cluster.workers[0]
        compute = time_model.compute_time(spec)
        comm = time_model.communication_time(spec)
        assert compute > 0 and comm > 0
        assert time_model.iteration_time(spec) == pytest.approx(compute + comm)
        assert time_model.compute_to_communication_ratio(spec) == pytest.approx(compute / comm)

    def test_more_gpus_per_worker_reduce_compute_time(self):
        model = resnet20(num_classes=10, base_width=8)
        cost = estimate_model_cost(model, (3, 16, 16))
        single = homogeneous_cluster(num_workers=1, gpus_per_worker=1).workers[0]
        quad = homogeneous_cluster(num_workers=1, gpus_per_worker=4).workers[0]
        time_model = IterationTimeModel(cost, batch_size=64)
        assert time_model.compute_time(quad) < time_model.compute_time(single)

    def test_validation(self):
        model = resnet20(num_classes=10, base_width=4)
        cost = estimate_model_cost(model, (3, 8, 8))
        with pytest.raises(ValueError):
            IterationTimeModel(cost, batch_size=0)
        with pytest.raises(ValueError):
            IterationTimeModel(cost, batch_size=8, time_scale=0)
        with pytest.raises(ValueError):
            estimate_model_cost(model, ())
        with pytest.raises(ValueError):
            cost.iteration_flops(0)


class TestSimulationTrace:
    def test_records_and_queries(self):
        trace = SimulationTrace()
        trace.record(0.0, "push", worker_id="a", staleness=0)
        trace.record(1.0, "push", worker_id="a", staleness=1)
        trace.record(1.5, "release", worker_id="b", wait_time=0.5)
        assert len(trace) == 3
        assert len(trace.of_kind("push")) == 2
        assert len(trace.for_worker("a")) == 2
        assert np.allclose(trace.push_times("a"), [0.0, 1.0])
        assert np.allclose(trace.iteration_intervals("a"), [1.0])
        assert trace.total_wait_time() == pytest.approx(0.5)
        assert trace.total_wait_time("a") == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            SimulationTrace().record(-1.0, "push")
