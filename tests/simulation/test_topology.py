"""Unit tests for the topology-aware network model and ring allreduce."""

import numpy as np
import pytest

from repro.metrics.throughput import (
    EMPTY_PERCENTILES,
    percentile,
    percentile_summary,
)
from repro.simulation.network import NetworkModel
from repro.simulation.topology import (
    TOPOLOGY_PRESETS,
    Link,
    Topology,
    available_jitters,
    available_topology_presets,
    build_topology,
    canonical_topology_spec,
    make_jitter,
    parse_jitter_spec,
    rack_topology,
    ring_allreduce,
    ring_allreduce_wire_bytes,
    single_link_topology,
    validate_comm_pattern,
)


class TestJitterSpecs:
    def test_parse_known_specs(self):
        assert parse_jitter_spec("none") == ("none", None)
        assert parse_jitter_spec("lognormal:0.2") == ("lognormal", 0.2)
        assert parse_jitter_spec("exponential:0.5") == ("exponential", 0.5)
        assert parse_jitter_spec("pareto:2.5") == ("pareto", 2.5)

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "gaussian:0.1", "lognormal", "lognormal:abc", "none:0.1",
         "lognormal:-0.5"],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_jitter_spec(bad)

    def test_error_names_available_jitters(self):
        with pytest.raises(ValueError, match="exponential"):
            parse_jitter_spec("nope:1.0")
        assert available_jitters() == ("exponential", "lognormal", "none", "pareto")

    def test_zero_parameter_collapses_to_no_jitter(self):
        # The degenerate flat topology must skip the RNG draw exactly when
        # the flat model does, or the two jitter streams desynchronize.
        assert make_jitter("none") is None
        assert make_jitter("lognormal:0") is None
        assert make_jitter("exponential:0.0") is None

    def test_draws_match_flat_model_arithmetic(self):
        model = make_jitter("lognormal:0.3")
        a = model.draw(np.random.default_rng(5))
        b = float(np.exp(np.random.default_rng(5).normal(0.0, 0.3)))
        assert a == b

    def test_tail_jitters_are_at_least_one(self, rng):
        for spec in ("exponential:1.0", "pareto:1.5"):
            model = make_jitter(spec)
            draws = [model.draw(rng) for _ in range(200)]
            assert min(draws) >= 1.0


class TestLink:
    def test_base_time_is_latency_plus_transfer(self):
        link = Link(name="l", latency=0.5, bandwidth_bytes_per_second=100.0)
        assert link.base_time(50) == 0.5 + 50 / 100.0

    def test_zero_bytes_still_pays_latency(self):
        link = Link(name="l", latency=0.25, bandwidth_bytes_per_second=10.0)
        assert link.base_time(0) == 0.25

    def test_negative_bytes_rejected(self):
        link = Link(name="l", latency=0.1, bandwidth_bytes_per_second=10.0)
        with pytest.raises(ValueError, match="nbytes"):
            link.base_time(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"latency": -0.1},
            {"bandwidth_bytes_per_second": 0.0},
            {"bandwidth_bytes_per_second": -5.0},
            {"jitter": "bogus:1"},
        ],
    )
    def test_invalid_links_rejected(self, kwargs):
        defaults = dict(name="l", latency=0.1, bandwidth_bytes_per_second=10.0)
        with pytest.raises(ValueError):
            Link(**{**defaults, **kwargs})


def two_rack_fixture() -> Topology:
    return rack_topology(
        ["a", "b", "c", "d"],
        num_racks=2,
        leaf={"latency": 0.1, "bandwidth": 100.0},
        uplink={"latency": 1.0, "bandwidth": 10.0, "shared": True},
    )


class TestTopologyGraph:
    def test_single_link_paths(self):
        network = NetworkModel(name="test", latency=1e-3, bandwidth_bytes_per_second=1e9, jitter=0.0)
        topo = single_link_topology(["w0", "w1"], network)
        assert topo.worker_ids == ["w0", "w1"]
        (link,) = topo.worker_path("w0")
        assert link.name == "link-w0"
        assert not link.shared

    def test_unknown_worker_raises(self):
        network = NetworkModel(name="test", latency=1e-3, bandwidth_bytes_per_second=1e9, jitter=0.0)
        topo = single_link_topology(["w0"], network)
        with pytest.raises(KeyError, match="w9"):
            topo.worker_path("w9")

    def test_duplicate_link_names_rejected(self):
        link = Link(name="l", latency=0.1, bandwidth_bytes_per_second=10.0)
        with pytest.raises(ValueError, match="duplicate"):
            Topology("t", [link, link], {"w": ("l",)})

    def test_path_referencing_unknown_link_rejected(self):
        link = Link(name="l", latency=0.1, bandwidth_bytes_per_second=10.0)
        with pytest.raises(ValueError, match="unknown link"):
            Topology("t", [link], {"w": ("l", "missing")})

    def test_rack_assignment_is_contiguous(self):
        topo = two_rack_fixture()
        assert [link.name for link in topo.worker_path("a")] == [
            "leaf-a",
            "uplink-rack0",
        ]
        assert [link.name for link in topo.worker_path("d")] == [
            "leaf-d",
            "uplink-rack1",
        ]

    def test_same_rack_route_skips_uplinks(self):
        topo = two_rack_fixture()
        route = topo.worker_to_worker_path("a", "b")
        assert [link.name for link in route] == ["leaf-a", "leaf-b"]

    def test_cross_rack_route_traverses_both_uplinks(self):
        topo = two_rack_fixture()
        route = topo.worker_to_worker_path("a", "c")
        assert [link.name for link in route] == [
            "leaf-a",
            "uplink-rack0",
            "uplink-rack1",
            "leaf-c",
        ]

    def test_self_route_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            two_rack_fixture().worker_to_worker_path("a", "a")

    def test_describe_round_trips_link_settings(self):
        described = two_rack_fixture().describe()
        assert described["paths"]["c"] == ["leaf-c", "uplink-rack1"]
        uplinks = [l for l in described["links"] if l["shared"]]
        assert len(uplinks) == 2


class TestFifoQueueing:
    def test_private_links_never_queue(self):
        network = NetworkModel(name="test", latency=0.5, bandwidth_bytes_per_second=1e9, jitter=0.0)
        topo = single_link_topology(["w0"], network)
        state = topo.new_state()
        path = topo.worker_path("w0")
        first = state.transfer(path, 1000, start=0.0)
        second = state.transfer(path, 1000, start=0.0)
        assert first == second
        assert state.queue_trace == []

    def test_shared_link_serializes_fifo(self):
        topo = two_rack_fixture()
        state = topo.new_state()
        path = topo.worker_path("a")  # leaf 0.1+10/100, uplink 1.0+10/10
        d1 = state.transfer(path, 10, start=0.0)
        d2 = state.transfer(path, 10, start=0.0)
        # Second transfer arrives at the uplink while the first occupies it.
        assert d1 == pytest.approx(0.2 + 2.0)
        assert d2 == pytest.approx(d1 + 2.0)
        (first, second) = state.queue_trace
        assert first["wait"] == 0.0
        assert second["wait"] == pytest.approx(2.0)
        assert second["start"] == pytest.approx(first["start"] + 2.0)
        assert state.busy_until("uplink-rack0") == pytest.approx(0.2 + 4.0)

    def test_idle_link_does_not_delay_late_arrivals(self):
        topo = two_rack_fixture()
        state = topo.new_state()
        path = topo.worker_path("a")
        state.transfer(path, 10, start=0.0)
        late = state.transfer(path, 10, start=100.0)
        assert late == pytest.approx(0.2 + 2.0)
        assert state.queue_trace[-1]["wait"] == 0.0

    def test_zero_byte_transfer_pays_latency_only(self):
        topo = two_rack_fixture()
        state = topo.new_state()
        assert state.transfer(topo.worker_path("a"), 0) == pytest.approx(1.1)

    def test_negative_bytes_and_empty_path_rejected(self):
        state = two_rack_fixture().new_state()
        with pytest.raises(ValueError, match="nbytes"):
            state.transfer(two_rack_fixture().worker_path("a"), -1)
        with pytest.raises(ValueError, match="path"):
            state.transfer((), 10)

    def test_queue_trace_is_deterministic(self):
        def trace(seed):
            topo = rack_topology(
                [f"w{i}" for i in range(8)],
                num_racks=2,
                leaf={"latency": 0.1, "bandwidth": 100.0, "jitter": "exponential:0.5"},
                uplink={"latency": 1.0, "bandwidth": 10.0, "jitter": "exponential:1.0"},
            )
            state = topo.new_state()
            rng = np.random.default_rng(seed)
            for index, worker in enumerate(topo.worker_ids):
                state.transfer(
                    topo.worker_path(worker), 64, start=0.1 * index, rng=rng
                )
            return state.queue_trace

        assert trace(9) == trace(9)
        assert trace(9) != trace(10)


class TestTopologySpecs:
    def test_presets_resolve(self):
        for name in available_topology_presets():
            canonical = canonical_topology_spec(name)
            assert canonical["kind"] in ("flat", "racks")
        assert set(available_topology_presets()) == set(TOPOLOGY_PRESETS)

    @pytest.mark.parametrize(
        "bad",
        [
            "warehouse",
            42,
            {"kind": "mesh"},
            {"kind": "racks", "num_racks": 0, "leaf": {}, "uplink": {}},
            {"kind": "racks", "num_racks": 2, "leaf": {"latency": 1}},
            {
                "kind": "racks",
                "num_racks": 2,
                "leaf": {"latency": 0.1, "bandwidth": 1.0, "color": "red"},
                "uplink": {"latency": 0.1, "bandwidth": 1.0},
            },
            {"kind": "flat", "num_racks": 2},
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            canonical_topology_spec(bad)

    def test_build_flat_preset_uses_network_profile(self):
        network = NetworkModel(name="test", latency=2e-3, bandwidth_bytes_per_second=1e9, jitter=0.15)
        topo = build_topology("flat", ["w0", "w1"], network)
        link = topo.worker_path("w0")[0]
        assert link.latency == network.latency
        assert link.jitter == f"lognormal:{network.jitter!r}"

    def test_build_accepts_prebuilt_topology(self):
        topo = two_rack_fixture()
        network = NetworkModel(name="test", latency=1e-3, bandwidth_bytes_per_second=1e9, jitter=0.0)
        assert build_topology(topo, ["a", "b"], network) is topo
        with pytest.raises(ValueError, match="no path"):
            build_topology(topo, ["a", "missing"], network)

    def test_comm_pattern_validation(self):
        assert validate_comm_pattern("PS") == "ps"
        assert validate_comm_pattern(" ring_allreduce ") == "ring_allreduce"
        with pytest.raises(ValueError, match="ring_allreduce"):
            validate_comm_pattern("tree")


class TestPercentiles:
    def test_matches_numpy_linear_interpolation(self, rng):
        samples = rng.exponential(1.0, size=257).tolist()
        for q in (0.0, 25.0, 50.0, 90.0, 99.0, 100.0):
            assert percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q)), rel=0, abs=1e-12
            )

    def test_single_sample_and_bounds(self):
        assert percentile([3.5], 50.0) == 3.5
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_summary_fields(self, rng):
        samples = rng.normal(10.0, 2.0, size=100).tolist()
        summary = percentile_summary(samples)
        assert summary.count == 100
        assert summary.p50 == pytest.approx(float(np.percentile(samples, 50)))
        assert summary.p99 == pytest.approx(float(np.percentile(samples, 99)))
        assert summary.max == max(samples)
        assert summary.mean == pytest.approx(float(np.mean(samples)))

    def test_empty_summary_is_schema_stable(self):
        summary = percentile_summary([])
        assert summary == EMPTY_PERCENTILES
        assert summary.to_dict() == {
            "count": 0,
            "p50": 0.0,
            "p90": 0.0,
            "p99": 0.0,
            "mean": 0.0,
            "max": 0.0,
        }


class TestRingAllreduce:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 16])
    def test_wire_bytes_formula(self, n):
        payload = 1_000_000.0
        expected = 2.0 * (n - 1) / n * payload
        assert ring_allreduce_wire_bytes(payload, n) == expected
        # Strictly less than the PS pattern's dense push+pull (2x payload).
        assert ring_allreduce_wire_bytes(payload, n) < 2.0 * payload

    def test_wire_bytes_rejects_degenerate_rings(self):
        with pytest.raises(ValueError):
            ring_allreduce_wire_bytes(100.0, 1)
        with pytest.raises(ValueError):
            ring_allreduce_wire_bytes(-1.0, 4)

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    @pytest.mark.parametrize("size", [1, 3, 17, 64])
    def test_matches_mean_numerically(self, rng, n, size):
        if size < n:
            pytest.skip("fewer elements than workers")
        arrays = [rng.normal(size=size) for _ in range(n)]
        out = ring_allreduce(arrays)
        np.testing.assert_allclose(out, np.mean(arrays, axis=0), rtol=1e-12)

    def test_two_workers_bit_for_bit_vs_sequential_sum(self, rng):
        arrays = [rng.normal(size=33) for _ in range(2)]
        out = ring_allreduce(arrays, average=False)
        reference = arrays[0].astype(np.float64) + arrays[1].astype(np.float64)
        assert out.tolist() == reference.tolist()

    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_identical_pushes_bit_for_bit_vs_ps_sum(self, rng, n):
        # On identical inputs every fold order produces the same bits, so
        # the ring must agree exactly with the server's sequential
        # sum-then-divide — the property the simulated ring pattern relies
        # on to reuse the PS apply path unchanged.
        push = rng.normal(size=50)
        arrays = [push.copy() for _ in range(n)]
        ring = ring_allreduce(arrays, average=True)
        sequential = arrays[0].astype(np.float64)
        for array in arrays[1:]:
            sequential = sequential + array
        sequential = sequential / n
        assert ring.tolist() == sequential.tolist()

    def test_shape_preserved_and_mismatch_rejected(self, rng):
        arrays = [rng.normal(size=(4, 5)) for _ in range(3)]
        assert ring_allreduce(arrays).shape == (4, 5)
        with pytest.raises(ValueError, match="shape"):
            ring_allreduce([np.zeros(3), np.zeros(4)])
        with pytest.raises(ValueError, match="empty"):
            ring_allreduce([])
