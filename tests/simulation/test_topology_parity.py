"""Flat-model parity and determinism gates for the topology layer.

Two invariants protect the seed's numbers:

* **Parity** — running the simulator with ``topology="flat"`` (the
  degenerate single-link-per-worker topology built from the cluster's
  network profile) must reproduce the seed's flat
  :class:`~repro.simulation.network.NetworkModel` path *bit-for-bit*:
  identical virtual times, accuracy curves and per-worker waits, for all
  four paradigms, with jitter on and off.  The topology layer performs the
  same arithmetic in the same order and consumes the same RNG draws — any
  drift here silently invalidates every historical result.
* **Determinism** — a 256-worker run behind tail-heavy racks replays
  identically from the same seed: same event log, same FIFO queue trace,
  same iteration-time percentiles.  The sweep suite's recorded numbers are
  only meaningful because of this.
"""

import dataclasses

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.models import mlp
from repro.simulation.cluster import homogeneous_cluster
from repro.simulation.network import NetworkModel
from repro.simulation.trainer import SimulationConfig, simulate_training

PARADIGMS = ("bsp", "asp", "ssp", "dssp")


def paradigm_kwargs(paradigm):
    if paradigm == "ssp":
        return {"staleness": 2}
    if paradigm == "dssp":
        return {"s_lower": 1, "s_upper": 4}
    return {}


def builder_for(train: ArrayDataset):
    input_dim = train.inputs.shape[1]

    def builder(rng: np.random.Generator):
        return mlp(input_dim=input_dim, hidden_dims=(16,), num_classes=4, rng=rng)

    return builder


def network(jitter: float) -> NetworkModel:
    return NetworkModel(
        name="parity",
        latency=1e-3,
        bandwidth_bytes_per_second=5e8,
        jitter=jitter,
    )


def run(
    train, test, paradigm, *, jitter, topology, num_workers=4, seed=0,
    epochs=2.0, **kwargs,
):
    config = SimulationConfig(
        cluster=homogeneous_cluster(
            num_workers=num_workers, gpus_per_worker=1, network=network(jitter)
        ),
        paradigm=paradigm,
        paradigm_kwargs=paradigm_kwargs(paradigm),
        epochs=epochs,
        batch_size=16,
        learning_rate=0.05,
        evaluate_every_updates=8,
        topology=topology,
        seed=seed,
        **kwargs,
    )
    return simulate_training(config, builder_for(train), train, test)


class TestFlatParity:
    """topology="flat" is the seed flat model, bit for bit."""

    @pytest.mark.parametrize("paradigm", PARADIGMS)
    @pytest.mark.parametrize("jitter", [0.0, 0.2])
    def test_bit_for_bit_virtual_time(self, tiny_flat_datasets, paradigm, jitter):
        train, test = tiny_flat_datasets
        flat = run(train, test, paradigm, jitter=jitter, topology=None)
        topo = run(train, test, paradigm, jitter=jitter, topology="flat")
        # Exact equality, not approx: same arithmetic, same RNG draws.
        assert topo.total_virtual_time == flat.total_virtual_time
        assert topo.times.tolist() == flat.times.tolist()
        assert topo.accuracies.tolist() == flat.accuracies.tolist()
        assert topo.wait_time_per_worker == flat.wait_time_per_worker
        assert topo.total_updates == flat.total_updates
        assert (
            topo.iteration_time_summary.to_dict()
            == flat.iteration_time_summary.to_dict()
        )

    def test_flat_topology_has_no_queueing(self, tiny_flat_datasets):
        train, test = tiny_flat_datasets
        result = run(train, test, "dssp", jitter=0.2, topology="flat")
        assert result.queue_trace == []

    def test_inline_flat_dict_equals_preset(self, tiny_flat_datasets):
        train, test = tiny_flat_datasets
        preset = run(train, test, "bsp", jitter=0.2, topology="flat")
        inline = run(train, test, "bsp", jitter=0.2, topology={"kind": "flat"})
        assert inline.total_virtual_time == preset.total_virtual_time
        assert inline.times.tolist() == preset.times.tolist()


class TestRackTopologyBehaviour:
    def test_shared_uplink_produces_queueing(self, tiny_flat_datasets):
        train, test = tiny_flat_datasets
        result = run(train, test, "bsp", jitter=0.2, topology="two-rack")
        assert result.queue_trace, "shared uplinks must record FIFO waits"
        for record in result.queue_trace:
            assert record["link"].startswith("uplink-rack")
            assert record["start"] >= record["arrival"]
            assert record["wait"] == record["start"] - record["arrival"]
        assert any(record["wait"] > 0 for record in result.queue_trace)

    def test_rack_topology_slower_than_flat(self, tiny_flat_datasets):
        # The two-rack preset's contended 0.6 GB/s uplink must cost more
        # virtual time than the parity network's private links.
        train, test = tiny_flat_datasets
        flat = run(train, test, "bsp", jitter=0.0, topology=None)
        racks = run(train, test, "bsp", jitter=0.0, topology="two-rack")
        assert racks.total_virtual_time > flat.total_virtual_time

    def test_iteration_summary_matches_numpy(self, tiny_flat_datasets):
        train, test = tiny_flat_datasets
        result = run(train, test, "dssp", jitter=0.2, topology="two-rack")
        pooled = []
        for worker_id in result.iterations_per_worker:
            times = result.trace.push_times(worker_id)
            if times.size:
                pooled.extend(np.diff(times, prepend=0.0).tolist())
        summary = result.iteration_time_summary
        assert summary.count == len(pooled)
        assert summary.p50 == pytest.approx(float(np.percentile(pooled, 50)))
        assert summary.p90 == pytest.approx(float(np.percentile(pooled, 90)))
        assert summary.p99 == pytest.approx(float(np.percentile(pooled, 99)))


class TestTailHeavyDeterminism:
    """Same seed, same history — at sweep scale (256 workers)."""

    @pytest.fixture(scope="class")
    def problem(self):
        rng = np.random.default_rng(11)
        inputs = rng.normal(size=(640, 12))
        labels = rng.integers(0, 4, size=640)
        train = ArrayDataset(inputs, labels)
        test = ArrayDataset(inputs[:128], labels[:128])
        return train, test

    def big_run(self, problem, seed=0):
        train, test = problem
        return run(
            train,
            test,
            "dssp",
            jitter=0.2,
            topology="tail-heavy",
            num_workers=256,
            seed=seed,
            epochs=8.0,
        )

    def test_replays_identically(self, problem):
        first = self.big_run(problem)
        second = self.big_run(problem)
        assert first.queue_trace == second.queue_trace
        assert first.events == second.events
        assert (
            first.iteration_time_summary.to_dict()
            == second.iteration_time_summary.to_dict()
        )
        assert first.total_virtual_time == second.total_virtual_time
        assert first.times.tolist() == second.times.tolist()
        assert first.accuracies.tolist() == second.accuracies.tolist()
        assert first.wait_time_per_worker == second.wait_time_per_worker

    def test_different_seed_diverges(self, problem):
        first = self.big_run(problem, seed=0)
        other = self.big_run(problem, seed=1)
        assert first.queue_trace != other.queue_trace
        assert first.total_virtual_time != other.total_virtual_time

    def test_all_workers_route_through_two_uplinks(self, problem):
        result = self.big_run(problem)
        links = {record["link"] for record in result.queue_trace}
        assert links == {"uplink-rack0", "uplink-rack1"}
        tags = {record["tag"].split(":")[1] for record in result.queue_trace}
        assert tags == {"push", "pull"}
