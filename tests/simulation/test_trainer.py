"""Integration tests for the discrete-event training simulator."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.models import mlp
from repro.simulation.cluster import heterogeneous_cluster, homogeneous_cluster
from repro.simulation.trainer import SimulationConfig, simulate_training


@pytest.fixture
def flat_problem(tiny_flat_datasets):
    return tiny_flat_datasets


def builder_for(train: ArrayDataset):
    input_dim = train.inputs.shape[1]

    def builder(rng: np.random.Generator):
        return mlp(input_dim=input_dim, hidden_dims=(16,), num_classes=4, rng=rng)

    return builder


def compute_heavy_timing_cost():
    """A timing cost dominated by computation, so device-speed differences
    (and therefore the synchronization behaviour) actually matter."""
    from repro.simulation.workload import ModelCost

    return ModelCost(
        flops_per_sample=5e8, num_parameters=100_000, parameter_bytes=400_000
    )


def run(train, test, paradigm, cluster=None, epochs=2.0, seed=0, **kwargs):
    config = SimulationConfig(
        cluster=cluster or homogeneous_cluster(num_workers=2, gpus_per_worker=1),
        paradigm=paradigm,
        paradigm_kwargs=kwargs.pop("paradigm_kwargs", _default_kwargs(paradigm)),
        epochs=epochs,
        batch_size=16,
        learning_rate=0.05,
        evaluate_every_updates=8,
        seed=seed,
        **kwargs,
    )
    return simulate_training(config, builder_for(train), train, test)


def _default_kwargs(paradigm):
    if paradigm == "ssp":
        return {"staleness": 2}
    if paradigm == "dssp":
        return {"s_lower": 1, "s_upper": 4}
    return {}


class TestSimulatedTraining:
    @pytest.mark.parametrize("paradigm", ["bsp", "asp", "ssp", "dssp"])
    def test_runs_and_reports_for_every_paradigm(self, flat_problem, paradigm):
        train, test = flat_problem
        result = run(train, test, paradigm)
        expected_updates = int(np.ceil(2.0 * len(train) / 16))
        assert result.total_updates == expected_updates
        assert result.total_virtual_time > 0
        assert result.times.shape == result.accuracies.shape
        assert np.all(np.diff(result.times) >= 0)
        assert 0.0 <= result.best_accuracy <= 1.0
        assert set(result.iterations_per_worker) == {"worker-0", "worker-1"}

    def test_training_improves_accuracy(self, flat_problem):
        train, test = flat_problem
        result = run(train, test, "bsp", epochs=4.0)
        assert result.accuracies[-1] > result.accuracies[0] + 0.2

    def test_same_seed_is_deterministic(self, flat_problem):
        train, test = flat_problem
        first = run(train, test, "dssp", seed=3)
        second = run(train, test, "dssp", seed=3)
        assert np.allclose(first.times, second.times)
        assert np.allclose(first.accuracies, second.accuracies)
        assert first.total_virtual_time == pytest.approx(second.total_virtual_time)

    def test_different_seeds_differ(self, flat_problem):
        train, test = flat_problem
        first = run(train, test, "asp", seed=1)
        second = run(train, test, "asp", seed=2)
        assert first.total_virtual_time != pytest.approx(second.total_virtual_time)

    def test_asp_never_waits_and_bsp_waits(self, flat_problem):
        train, test = flat_problem
        cluster = heterogeneous_cluster()
        asp = run(train, test, "asp", cluster=cluster)
        bsp = run(train, test, "bsp", cluster=cluster)
        assert asp.total_wait_time == 0.0
        assert bsp.total_wait_time > 0.0

    def test_heterogeneous_asp_lets_fast_worker_do_more_iterations(self, flat_problem):
        train, test = flat_problem
        result = run(
            train,
            test,
            "asp",
            cluster=heterogeneous_cluster(),
            timing_cost=compute_heavy_timing_cost(),
            timing_batch_size=128,
        )
        iterations = result.iterations_per_worker
        assert iterations["worker-0"] > iterations["worker-1"]

    def test_per_worker_accounting_balances_iterations(self, flat_problem):
        train, test = flat_problem
        result = run(
            train,
            test,
            "asp",
            cluster=heterogeneous_cluster(),
            epoch_accounting="per_worker",
            timing_cost=compute_heavy_timing_cost(),
            timing_batch_size=128,
        )
        iterations = result.iterations_per_worker
        assert iterations["worker-0"] == iterations["worker-1"]

    def test_ssp_staleness_stays_bounded(self, flat_problem):
        train, test = flat_problem
        result = run(
            train,
            test,
            "ssp",
            cluster=heterogeneous_cluster(),
            paradigm_kwargs={"staleness": 2},
            epochs=3.0,
        )
        # Update staleness can exceed the clock bound only by the in-flight
        # pushes of one round (at most num_workers - 1 extra).
        assert result.staleness_summary.maximum <= (2 + 1) * 2

    def test_dssp_records_controller_decisions_on_skewed_cluster(self, flat_problem):
        train, test = flat_problem
        result = run(
            train,
            test,
            "dssp",
            cluster=heterogeneous_cluster(),
            paradigm_kwargs={"s_lower": 1, "s_upper": 6},
            epochs=3.0,
            timing_cost=compute_heavy_timing_cost(),
            timing_batch_size=128,
        )
        assert result.controller_decisions > 0
        assert result.paradigm_label == "DSSP s=1, r=5"

    def test_max_updates_caps_run(self, flat_problem):
        train, test = flat_problem
        config = SimulationConfig(
            cluster=homogeneous_cluster(num_workers=2, gpus_per_worker=1),
            paradigm="asp",
            paradigm_kwargs={},
            epochs=10.0,
            batch_size=16,
            max_updates=7,
            evaluate_every_updates=0,
            seed=0,
        )
        result = simulate_training(config, builder_for(train), train, test)
        assert result.total_updates == 7

    def test_lr_schedule_reduces_learning_rate(self, flat_problem):
        train, test = flat_problem
        result = run(
            train,
            test,
            "bsp",
            epochs=3.0,
            lr_milestones=(1.0, 2.0),
            lr_decay=0.1,
        )
        assert result.server_statistics["learning_rate"] == pytest.approx(0.05 * 0.01)

    def test_timing_cost_override_changes_virtual_time(self, flat_problem):
        train, test = flat_problem
        from repro.simulation.workload import ModelCost

        heavy = ModelCost(flops_per_sample=1e9, num_parameters=10_000_000, parameter_bytes=4 * 10_000_000)
        slow = run(train, test, "asp", timing_cost=heavy, timing_batch_size=128)
        fast = run(train, test, "asp")
        assert slow.total_virtual_time > fast.total_virtual_time

    def test_config_validation(self):
        cluster = homogeneous_cluster(num_workers=1)
        with pytest.raises(ValueError):
            SimulationConfig(cluster=cluster, epochs=0)
        with pytest.raises(ValueError):
            SimulationConfig(cluster=cluster, batch_size=0)
        with pytest.raises(ValueError):
            SimulationConfig(cluster=cluster, max_updates=0)
        with pytest.raises(ValueError):
            SimulationConfig(cluster=cluster, epoch_accounting="sometimes")

    def test_trace_contains_push_and_evaluation_events(self, flat_problem):
        train, test = flat_problem
        result = run(train, test, "bsp")
        assert len(result.trace.of_kind("push")) == result.total_updates
        assert len(result.trace.of_kind("evaluation")) == len(result.times)

    def test_time_to_accuracy_helper(self, flat_problem):
        train, test = flat_problem
        result = run(train, test, "bsp", epochs=4.0)
        reachable = result.time_to_accuracy(result.best_accuracy)
        assert reachable is not None
        assert result.time_to_accuracy(1.1) is None


class TestShardedSimulation:
    """Simulated training against the sharded parameter server."""

    def test_sharded_run_completes_for_every_paradigm(self, flat_problem):
        train, test = flat_problem
        for paradigm in ("bsp", "asp", "dssp"):
            result = run(train, test, paradigm, num_server_shards=4)
            expected_updates = int(np.ceil(2.0 * len(train) / 16))
            assert result.total_updates == expected_updates
            assert 0.0 <= result.best_accuracy <= 1.0

    def test_sharding_reduces_communication_bound_time(self, flat_problem):
        """On a communication-bound workload, parallel per-shard transfers
        shorten the iteration and therefore the total virtual time.

        The model needs several similar-sized tensors: per-key sharding
        cannot split one dominant tensor, so a model that is one big matrix
        gains nothing (which is itself worth knowing and asserted below).
        """
        from repro.simulation.workload import ModelCost

        train, test = flat_problem
        input_dim = train.inputs.shape[1]

        def wide_builder(rng):
            return mlp(
                input_dim=input_dim,
                hidden_dims=(input_dim, input_dim, input_dim),
                num_classes=4,
                rng=rng,
            )

        comm_heavy = ModelCost(
            flops_per_sample=1e6, num_parameters=10_000_000,
            parameter_bytes=4 * 10_000_000,
        )

        def run_wide(num_server_shards):
            config = SimulationConfig(
                cluster=homogeneous_cluster(num_workers=2, gpus_per_worker=1),
                paradigm="asp",
                paradigm_kwargs={},
                epochs=2.0,
                batch_size=16,
                evaluate_every_updates=0,
                timing_cost=comm_heavy,
                timing_batch_size=128,
                timing_jitter=False,
                num_server_shards=num_server_shards,
                seed=0,
            )
            return simulate_training(config, wide_builder, train, test)

        mono = run_wide(1)
        sharded = run_wide(4)
        assert sharded.total_virtual_time < mono.total_virtual_time
        # Four near-equal weight matrices over four shards: the gating shard
        # carries about a third of the payload, so the bandwidth-dominated
        # round trip (and with it the total time) drops well below half.
        assert sharded.total_virtual_time < mono.total_virtual_time * 0.5

    def test_sharded_run_is_deterministic(self, flat_problem):
        train, test = flat_problem
        first = run(train, test, "dssp", seed=3, num_server_shards=4)
        second = run(train, test, "dssp", seed=3, num_server_shards=4)
        assert np.allclose(first.accuracies, second.accuracies)
        assert first.total_virtual_time == second.total_virtual_time

    def test_sharded_matches_monolithic_accuracy_with_same_event_order(self, flat_problem):
        """With timing jitter off and a homogeneous cluster the event order is
        identical, so delta pulls must reproduce the monolithic weights."""
        train, test = flat_problem
        kwargs = dict(timing_jitter=False, epochs=1.0)
        mono = run(train, test, "bsp", **kwargs)
        sharded = run(train, test, "bsp", num_server_shards=2, **kwargs)
        assert np.allclose(mono.accuracies, sharded.accuracies)

    def test_invalid_shard_count_rejected(self):
        cluster = homogeneous_cluster(num_workers=1)
        with pytest.raises(ValueError):
            SimulationConfig(cluster=cluster, num_server_shards=0)
