"""The documentation is executable: every README/docs code block runs.

Thin pytest wrapper around ``tools/check_docs.py`` (the same script the CI
docs job runs), parametrized per file so a rotten snippet names the
document that broke.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_docs", check_docs)
_spec.loader.exec_module(check_docs)

DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]


def test_docs_tree_exists():
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "architecture.md", "paradigms.md", "spec-reference.md"} <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_documented_blocks_execute(path):
    checked, skipped, failures = check_docs.check_file(path)
    assert failures == []
    # Every document must actually exercise something (or explicitly skip).
    assert checked + skipped > 0, f"{path.name} documents no runnable blocks"


def test_skip_marker_is_honoured(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "<!-- docs-check: skip (would fail) -->\n"
        "```console\n$ false\n```\n"
        "```json\n{\"not\": \"a spec\"}\n```\n"
    )
    checked, skipped, failures = check_docs.check_file(doc)
    assert (checked, skipped, failures) == (1, 1, [])


def test_failures_are_reported(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("```console\n$ exit 3\n```\n")
    checked, skipped, failures = check_docs.check_file(doc)
    assert checked == 1 and len(failures) == 1
    assert "exited 3" in failures[0]


def test_invalid_spec_json_is_caught(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text('```json\n{"workload": "mlp", "paradgim": "bsp"}\n```\n')
    checked, skipped, failures = check_docs.check_file(doc)
    assert len(failures) == 1
    assert "validate" in failures[0]
