"""End-to-end learning sanity checks for the substrate and both runtimes.

These tests verify that the pieces genuinely learn when put together —
single-machine SGD on each model family, the simulator, and the threaded
parameter server all reduce the loss / raise the accuracy on a small
synthetic problem well above chance.
"""

import numpy as np
import pytest

import repro
from repro.data.synthetic import SyntheticImageConfig, make_synthetic_image_dataset
from repro.metrics.accuracy import evaluate_model
from repro.models import downsized_alexnet, resnet20
from repro.nn.losses import SoftmaxCrossEntropy
from repro.optim.schedules import MultiStepSchedule
from repro.optim.sgd import SGD


@pytest.fixture(scope="module")
def image_problem():
    config = SyntheticImageConfig(
        num_classes=4, num_train=240, num_test=80, image_size=8, noise_scale=0.4, seed=11
    )
    return make_synthetic_image_dataset(config)


def train_single_machine(model, train, steps=60, batch_size=16, learning_rate=0.05):
    """Plain mini-batch SGD on one machine, via the state-dict optimizer."""
    rng = np.random.default_rng(0)
    loss_fn = SoftmaxCrossEntropy()
    optimizer = SGD(learning_rate=learning_rate, momentum=0.9)
    weights = {name: parameter.data for name, parameter in model.named_parameters()}
    losses = []
    for _ in range(steps):
        indices = rng.integers(0, len(train), size=batch_size)
        inputs, labels = train.inputs[indices], train.labels[indices]
        model.zero_grad()
        logits = model.forward(inputs)
        losses.append(loss_fn.forward(logits, labels))
        model.backward(loss_fn.backward())
        optimizer.step(weights, model.gradients())
    return losses


class TestSingleMachineTraining:
    def test_alexnet_learns(self, image_problem):
        train, test = image_problem
        model = downsized_alexnet(
            num_classes=4, image_size=8, width=4, fc_width=16, dropout=0.0,
            rng=np.random.default_rng(1),
        )
        losses = train_single_machine(model, train, steps=50, learning_rate=0.02)
        accuracy, _ = evaluate_model(model, test)
        assert losses[-1] < losses[0]
        assert accuracy > 0.5

    def test_resnet_learns(self, image_problem):
        train, test = image_problem
        model = resnet20(num_classes=4, base_width=4, rng=np.random.default_rng(1))
        losses = train_single_machine(model, train, steps=40, learning_rate=0.05)
        accuracy, _ = evaluate_model(model, test)
        assert losses[-1] < losses[0]
        assert accuracy > 0.45

    def test_learning_rate_schedule_integrates_with_optimizer(self, image_problem):
        train, _ = image_problem
        model = downsized_alexnet(
            num_classes=4, image_size=8, width=4, fc_width=16, dropout=0.0,
            rng=np.random.default_rng(2),
        )
        optimizer = SGD(learning_rate=0.05)
        schedule = MultiStepSchedule(0.05, milestones=(1,), decay=0.1)
        optimizer.learning_rate = schedule.learning_rate(0)
        assert optimizer.learning_rate == pytest.approx(0.05)
        optimizer.learning_rate = schedule.learning_rate(2)
        assert optimizer.learning_rate == pytest.approx(0.005)


class TestDistributedMatchesSingleMachineDirection:
    def test_simulated_bsp_matches_large_batch_direction(self, image_problem):
        """One BSP round with P workers (gradient scale 1/P) moves the weights
        in the same direction as one large-batch step on the union of the
        workers' mini-batches."""
        from repro.core.factory import make_policy
        from repro.ps.kvstore import KeyValueStore
        from repro.ps.messages import PushRequest
        from repro.ps.server import ParameterServer

        train, _ = image_problem
        model = downsized_alexnet(
            num_classes=4, image_size=8, width=4, fc_width=16, dropout=0.0,
            rng=np.random.default_rng(3),
        )
        loss_fn = SoftmaxCrossEntropy()
        initial = model.state_dict()

        # Two workers, 8 samples each.
        batches = [(train.inputs[:8], train.labels[:8]), (train.inputs[8:16], train.labels[8:16])]
        store = KeyValueStore(
            initial_weights={name: p.data.copy() for name, p in model.named_parameters()}
        )
        server = ParameterServer(
            store=store, optimizer=SGD(learning_rate=0.1), policy=make_policy("bsp")
        )
        server.register_worker("w0")
        server.register_worker("w1")
        for worker_id, (inputs, labels) in zip(("w0", "w1"), batches):
            model.load_state_dict(initial)
            model.zero_grad()
            loss_fn.forward(model.forward(inputs), labels)
            model.backward(loss_fn.backward())
            server.handle_push(
                PushRequest(
                    worker_id=worker_id,
                    gradients=model.gradients(),
                    base_version=0,
                    timestamp=1.0,
                )
            )
        distributed = server.store.weights_snapshot()

        # Large-batch reference step.
        model.load_state_dict(initial)
        model.zero_grad()
        inputs = np.concatenate([b[0] for b in batches])
        labels = np.concatenate([b[1] for b in batches])
        loss_fn.forward(model.forward(inputs), labels)
        model.backward(loss_fn.backward())
        reference_weights = {name: p.data.copy() for name, p in model.named_parameters()}
        SGD(learning_rate=0.1).step(reference_weights, model.gradients())

        for name in distributed:
            moved = distributed[name] - initial[name]
            reference_move = reference_weights[name] - initial[name]
            if np.linalg.norm(moved) < 1e-12 or np.linalg.norm(reference_move) < 1e-12:
                continue
            cosine = float(
                np.sum(moved * reference_move)
                / (np.linalg.norm(moved) * np.linalg.norm(reference_move))
            )
            assert cosine > 0.9


class TestPackageMetadata:
    def test_version_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2
