"""Property-based tests (hypothesis) on the core invariants of the system.

These complement the example-based tests with randomized schedules and
shapes, targeting the invariants the paper's correctness rests on:

* clock bookkeeping never loses pushes;
* SSP never lets a *released* worker exceed the staleness bound;
* the strict DSSP variant keeps the lead within [s_L, s_U] while the
  literal variant never blocks a worker that SSP at s_U would release;
* the controller's choice is always at least as good as stopping now;
* optimizer updates move weights opposite to the gradient.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import SynchronizationController
from repro.core.dssp import DynamicStaleSynchronousParallel
from repro.core.ssp import StaleSynchronousParallel
from repro.optim.sgd import SGD

WORKER_IDS = ["w0", "w1", "w2"]


def drive_policy(policy, schedule: list[int]) -> dict:
    """Drive a policy with a schedule of worker indices.

    Blocked workers are skipped until released (their scheduled turns are
    dropped), which models the fact that a waiting worker cannot push.
    Returns summary observables.
    """
    for worker_id in WORKER_IDS:
        policy.register_worker(worker_id)
    blocked: set[str] = set()
    time = 0.0
    max_released_lead = 0
    for index in schedule:
        worker_id = WORKER_IDS[index % len(WORKER_IDS)]
        if worker_id in blocked:
            continue
        time += 1.0
        outcome = policy.on_push(worker_id, time)
        if outcome.blocked:
            blocked.add(worker_id)
        else:
            clocks = policy.clock_table.clocks()
            max_released_lead = max(
                max_released_lead, clocks[worker_id] - min(clocks.values())
            )
        for released in policy.pop_releasable():
            blocked.discard(released)
    return {"max_released_lead": max_released_lead, "blocked": blocked}


schedules = st.lists(st.integers(min_value=0, max_value=2), min_size=10, max_size=120)


class TestPolicyInvariants:
    @settings(max_examples=40, deadline=None)
    @given(schedule=schedules, staleness=st.integers(min_value=0, max_value=4))
    def test_ssp_released_lead_never_exceeds_threshold(self, schedule, staleness):
        policy = StaleSynchronousParallel(staleness=staleness)
        observed = drive_policy(policy, schedule)
        assert observed["max_released_lead"] <= staleness

    @settings(max_examples=40, deadline=None)
    @given(
        schedule=schedules,
        s_lower=st.integers(min_value=0, max_value=3),
        extra=st.integers(min_value=0, max_value=4),
    )
    def test_strict_dssp_lead_never_exceeds_upper_bound(self, schedule, s_lower, extra):
        policy = DynamicStaleSynchronousParallel(
            s_lower=s_lower, s_upper=s_lower + extra, enforce_upper_bound=True
        )
        observed = drive_policy(policy, schedule)
        assert observed["max_released_lead"] <= s_lower + extra

    @settings(max_examples=40, deadline=None)
    @given(schedule=schedules, s_lower=st.integers(min_value=0, max_value=3))
    def test_dssp_releases_whenever_ssp_at_lower_threshold_would(
        self, schedule, s_lower
    ):
        """Pointwise relaxation: on the same push sequence (decisions compared
        open-loop, so both policies see identical clock states), every push
        SSP(s_L) releases is also released by DSSP — DSSP can only relax the
        lower-threshold rule, never tighten it."""
        ssp = StaleSynchronousParallel(staleness=s_lower)
        dssp = DynamicStaleSynchronousParallel(s_lower=s_lower, s_upper=s_lower + 5)
        for policy in (ssp, dssp):
            for worker_id in WORKER_IDS:
                policy.register_worker(worker_id)
        time = 0.0
        for index in schedule:
            worker_id = WORKER_IDS[index % len(WORKER_IDS)]
            time += 1.0
            ssp_outcome = ssp.on_push(worker_id, time)
            dssp_outcome = dssp.on_push(worker_id, time)
            ssp.pop_releasable()
            dssp.pop_releasable()
            if ssp_outcome.release:
                assert dssp_outcome.release

    @settings(max_examples=40, deadline=None)
    @given(schedule=schedules)
    def test_clock_totals_match_processed_pushes(self, schedule):
        policy = StaleSynchronousParallel(staleness=2)
        drive_policy(policy, schedule)
        assert sum(policy.clock_table.clocks().values()) == policy.statistics()["pushes"]


class TestControllerProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        fast=st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
        slow=st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
        r_max=st.integers(min_value=1, max_value=12),
    )
    def test_optimum_never_worse_than_stopping_now(self, fast, slow, r_max):
        controller = SynchronizationController(max_extra_iterations=r_max)
        waits = controller.predicted_waits(0.0, fast, 0.0, slow)
        assert waits.shape == (r_max + 1,)
        assert np.min(waits) <= waits[0] + 1e-12
        assert np.all(waits >= 0)


class TestOptimizerProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=8
        ),
        learning_rate=st.floats(min_value=1e-4, max_value=0.5, allow_nan=False),
    )
    def test_step_moves_against_gradient(self, values, learning_rate):
        weights = {"w": np.array(values, dtype=np.float64)}
        gradients = {"w": np.array(values, dtype=np.float64)}
        before = weights["w"].copy()
        SGD(learning_rate=learning_rate).step(weights, gradients)
        assert np.allclose(weights["w"], before - learning_rate * before)

    @settings(max_examples=20, deadline=None)
    @given(scale=st.floats(min_value=0.1, max_value=2.0, allow_nan=False))
    def test_scale_is_linear(self, scale):
        base = {"w": np.ones(4)}
        scaled = {"w": np.ones(4)}
        SGD(learning_rate=0.1).step(base, {"w": np.ones(4)})
        SGD(learning_rate=0.1).step(scaled, {"w": np.ones(4)}, scale=scale)
        base_step = 1.0 - base["w"][0]
        scaled_step = 1.0 - scaled["w"][0]
        assert np.isclose(scaled_step, base_step * scale, rtol=1e-12)
