"""Tests for the per-layer forward/backward profiler."""

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Residual, Sequential, SoftmaxCrossEntropy
from repro.utils.profiler import LayerProfiler


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def _model(rng):
    return Sequential(Linear(6, 8, rng=rng), ReLU(), Linear(8, 4, rng=rng))


class TestAttachDetach:
    def test_attach_wraps_only_leaves(self, rng):
        model = Sequential(Residual(Sequential(Linear(4, 4, rng=rng))), ReLU())
        profiler = LayerProfiler(model).attach()
        names = {t.name for t in profiler.timings()}
        # Containers (Sequential/Residual) are skipped; Identity shortcut is a leaf.
        assert names == {"0.body.0", "0.shortcut", "1"}
        profiler.detach()

    def test_detach_restores_original_methods(self, rng):
        model = _model(rng)
        original = model[0].forward
        profiler = LayerProfiler(model).attach()
        assert model[0].forward is not original
        profiler.detach()
        # Instance attribute removed -> class method resolves again.
        assert model[0].forward.__func__ is type(model[0]).forward

    def test_attach_is_idempotent(self, rng):
        model = _model(rng)
        profiler = LayerProfiler(model).attach().attach()
        model.forward(rng.normal(size=(2, 6)))
        assert all(t.forward_calls == 1 for t in profiler.timings() if t.forward_calls)
        profiler.detach()

    def test_context_manager(self, rng):
        model = _model(rng)
        with LayerProfiler(model) as profiler:
            model.forward(rng.normal(size=(2, 6)))
        assert profiler.forward_seconds > 0.0
        assert "forward" not in model[0].__dict__


class TestTimings:
    def test_counts_forward_and_backward_calls(self, rng):
        model = _model(rng)
        loss = SoftmaxCrossEntropy()
        profiler = LayerProfiler(model, loss_fn=loss).attach()
        inputs = rng.normal(size=(3, 6))
        labels = rng.integers(0, 4, size=3)
        for _ in range(2):
            loss.forward(model.forward(inputs), labels)
            model.zero_grad()
            model.backward(loss.backward())
        profiler.detach()
        by_name = {t.name: t for t in profiler.timings()}
        assert by_name["0"].forward_calls == 2
        assert by_name["0"].backward_calls == 2
        assert by_name["<loss>"].forward_calls == 2
        assert by_name["<loss>"].kind == "SoftmaxCrossEntropy"
        assert profiler.forward_seconds > 0.0
        assert profiler.backward_seconds > 0.0

    def test_profiled_results_identical_to_unprofiled(self, rng):
        inputs = rng.normal(size=(2, 6))
        plain = _model(np.random.default_rng(3))
        profiled = _model(np.random.default_rng(3))
        expected = plain.forward(inputs)
        with LayerProfiler(profiled):
            actual = profiled.forward(inputs)
        assert np.array_equal(expected, actual)

    def test_as_dict_schema(self, rng):
        model = _model(rng)
        with LayerProfiler(model) as profiler:
            model.forward(rng.normal(size=(2, 6)))
        payload = profiler.as_dict()
        assert set(payload) == {
            "forward_seconds",
            "backward_seconds",
            "total_seconds",
            "layers",
        }
        assert payload["layers"], "expected at least one layer entry"
        entry = payload["layers"][0]
        assert set(entry) == {
            "name",
            "kind",
            "forward_calls",
            "forward_seconds",
            "backward_calls",
            "backward_seconds",
            "total_seconds",
        }

    def test_report_renders_table(self, rng):
        model = _model(rng)
        with LayerProfiler(model) as profiler:
            model.forward(rng.normal(size=(2, 6)))
        report = profiler.report(top=2)
        assert "layer" in report and "TOTAL" in report
        assert "Linear" in report

    def test_timings_sorted_slowest_first(self, rng):
        model = _model(rng)
        with LayerProfiler(model) as profiler:
            for _ in range(3):
                model.forward(rng.normal(size=(4, 6)))
        totals = [t.total_seconds for t in profiler.timings()]
        assert totals == sorted(totals, reverse=True)
