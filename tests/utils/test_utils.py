"""Tests for the utility modules (rng, serialization, timing, validation, logging)."""

import logging

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.rng import RngStream, seed_everything, spawn_rng
from repro.utils.serialization import (
    add_states,
    clone_state,
    flatten_state,
    scale_state,
    state_nbytes,
    state_num_parameters,
    states_allclose,
    unflatten_like,
)
from repro.utils.timing import Stopwatch, format_seconds
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestRng:
    def test_seed_everything_returns_generator(self):
        generator = seed_everything(42)
        assert isinstance(generator, np.random.Generator)

    def test_rng_stream_same_name_same_generator(self):
        streams = RngStream(seed=1)
        assert streams.get("data") is streams.get("data")

    def test_rng_stream_is_order_independent(self):
        first = RngStream(seed=9)
        second = RngStream(seed=9)
        _ = first.get("other")
        a = first.get("data").normal(size=4)
        b = second.get("data").normal(size=4)
        assert np.allclose(a, b)

    def test_different_names_give_independent_streams(self):
        streams = RngStream(seed=2)
        assert not np.allclose(
            streams.get("a").normal(size=8), streams.get("b").normal(size=8)
        )

    def test_reset_recreates_streams(self):
        streams = RngStream(seed=3)
        first = streams.get("x").normal(size=4)
        streams.reset()
        second = streams.get("x").normal(size=4)
        assert np.allclose(first, second)

    def test_spawn_rng_deterministic(self):
        parent_a = np.random.default_rng(5)
        parent_b = np.random.default_rng(5)
        child_a = spawn_rng(parent_a, 1)
        child_b = spawn_rng(parent_b, 1)
        assert np.allclose(child_a.normal(size=4), child_b.normal(size=4))


class TestSerialization:
    @pytest.fixture
    def state(self):
        return {"w": np.arange(6, dtype=float).reshape(2, 3), "b": np.array([1.0, 2.0])}

    def test_clone_is_deep(self, state):
        clone = clone_state(state)
        clone["w"][0, 0] = 99.0
        assert state["w"][0, 0] == 0.0

    def test_flatten_unflatten_round_trip(self, state):
        vector = flatten_state(state)
        assert vector.shape == (8,)
        rebuilt = unflatten_like(vector, state)
        assert states_allclose(rebuilt, state)

    def test_unflatten_validates_length(self, state):
        with pytest.raises(ValueError):
            unflatten_like(np.zeros(3), state)

    def test_counts_and_bytes(self, state):
        assert state_num_parameters(state) == 8
        assert state_nbytes(state) == 8 * 8

    def test_states_allclose_detects_differences(self, state):
        other = clone_state(state)
        assert states_allclose(state, other)
        other["b"][0] += 1.0
        assert not states_allclose(state, other)
        assert not states_allclose(state, {"w": state["w"]})

    def test_add_and_scale(self, state):
        doubled = add_states(state, state)
        assert np.allclose(doubled["w"], state["w"] * 2)
        halved = scale_state(state, 0.5)
        assert np.allclose(halved["b"], [0.5, 1.0])
        with pytest.raises(ValueError):
            add_states(state, {"w": state["w"]})

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4))
    def test_flatten_round_trip_property(self, shape_sizes):
        rng = np.random.default_rng(0)
        state = {
            f"p{i}": rng.normal(size=(size, size)) for i, size in enumerate(shape_sizes)
        }
        rebuilt = unflatten_like(flatten_state(state), state)
        assert states_allclose(rebuilt, state)


class TestTiming:
    def test_stopwatch_elapsed_and_laps(self):
        watch = Stopwatch()
        assert watch.elapsed() == 0.0
        watch.start()
        first = watch.lap()
        second = watch.lap()
        assert second >= first >= 0.0
        assert len(watch.laps) == 2

    def test_format_seconds(self):
        assert format_seconds(3.4) == "3.4s"
        assert format_seconds(65.0) == "1m05.0s"
        assert format_seconds(3723.0) == "1h02m03.0s"
        with pytest.raises(ValueError):
            format_seconds(-1.0)


class TestValidation:
    def test_check_positive(self):
        assert check_positive(2, "x") == 2
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0
        with pytest.raises(ValueError):
            check_non_negative(-1, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_check_in_range(self):
        assert check_in_range(3, 1, 5, "x") == 3
        with pytest.raises(ValueError):
            check_in_range(6, 1, 5, "x")


class TestLogging:
    def test_get_logger_namespaces(self):
        assert get_logger("ps.server").name == "repro.ps.server"
        assert get_logger("repro.simulation").name == "repro.simulation"

    def test_enable_console_logging_idempotent(self):
        logger = enable_console_logging(logging.WARNING)
        handler_count = len(logger.handlers)
        enable_console_logging(logging.WARNING)
        assert len(logger.handlers) == handler_count
