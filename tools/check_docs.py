#!/usr/bin/env python
"""Executable-documentation checker: docs that cannot rot.

Extracts every fenced ```console and ```json block from the given markdown
files (by default ``README.md`` and ``docs/*.md``) and *runs* them:

* ``console`` blocks — every line starting with ``$ `` is executed with
  the repository root as working directory and ``src`` on ``PYTHONPATH``;
  it must exit 0.  Non-``$`` lines are treated as expected output and
  ignored (outputs carry timings and hardware-dependent numbers; exit
  codes do not).
* ``json`` blocks — must parse as JSON.  Blocks whose top-level object
  contains a ``"workload"`` key are experiment specs by convention and
  must additionally pass ``python -m repro validate``.

A block may opt out (e.g. the full benchmark suite, minutes of compute) by
preceding the fence with an HTML comment containing ``docs-check: skip``::

    <!-- docs-check: skip (reason) -->
    ```console
    $ REPRO_BENCH_SCALE=small pytest benchmarks/ -s
    ```

Run directly (``python tools/check_docs.py``; exits non-zero on the first
failure summary) or through the pytest wrapper
``tests/test_docs_examples.py``; CI runs it as the ``docs`` job.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SKIP_MARKER = "docs-check: skip"
CHECKED_KINDS = ("console", "json")


@dataclass
class Block:
    """One fenced code block extracted from a markdown file."""

    path: Path
    kind: str
    lineno: int
    lines: list[str] = field(default_factory=list)
    skipped: bool = False

    @property
    def label(self) -> str:
        """Human-readable location, e.g. ``README.md:37 [console]``."""
        try:
            shown = self.path.relative_to(REPO_ROOT)
        except ValueError:  # file outside the repo (tests use tmp dirs)
            shown = self.path
        return f"{shown}:{self.lineno} [{self.kind}]"


def extract_blocks(path: Path) -> list[Block]:
    """Parse ``path`` and return its ```console/```json blocks in order."""
    blocks: list[Block] = []
    current: Block | None = None
    pending_skip = False
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if current is not None:
            if line.startswith("```"):
                blocks.append(current)
                current = None
            else:
                current.lines.append(raw)
            continue
        if line.startswith("```"):
            kind = line[3:].strip().split()[0].lower() if line[3:].strip() else ""
            if kind in CHECKED_KINDS:
                current = Block(path=path, kind=kind, lineno=lineno, skipped=pending_skip)
            pending_skip = False
        elif line:
            pending_skip = line.startswith("<!--") and SKIP_MARKER in line
    if current is not None:
        raise ValueError(f"{path}: unterminated code fence at line {current.lineno}")
    return blocks


def run_command(command: str) -> tuple[int, str]:
    """Run one documented shell command from the repository root."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    try:
        completed = subprocess.run(
            command,
            shell=True,
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
    except subprocess.TimeoutExpired:
        return 124, "timed out after 600s"
    output = (completed.stdout + completed.stderr).strip()
    return completed.returncode, output


def check_console_block(block: Block) -> list[str]:
    """Execute a console block's ``$ `` commands; return failure messages."""
    failures = []
    for raw in block.lines:
        stripped = raw.strip()
        if not stripped.startswith("$ "):
            continue  # expected output, prompt art, comments
        command = stripped[2:]
        code, output = run_command(command)
        if code != 0:
            failures.append(
                f"{block.label}: `{command}` exited {code}\n{output[-2000:]}"
            )
    return failures


def check_json_block(block: Block) -> list[str]:
    """Parse a JSON block; validate it as a spec when it names a workload."""
    text = "\n".join(block.lines)
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        return [f"{block.label}: invalid JSON ({error})"]
    if not (isinstance(payload, dict) and "workload" in payload):
        return []
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", prefix="docs-spec-", delete=False
    ) as handle:
        handle.write(text)
        spec_path = handle.name
    try:
        code, output = run_command(
            f"{sys.executable} -m repro validate {spec_path}"
        )
        if code != 0:
            return [
                f"{block.label}: spec failed `python -m repro validate`\n{output[-2000:]}"
            ]
    finally:
        os.unlink(spec_path)
    return []


def check_file(path: Path) -> tuple[int, int, list[str]]:
    """Check one markdown file; returns (checked, skipped, failures)."""
    checked = skipped = 0
    failures: list[str] = []
    for block in extract_blocks(path):
        if block.skipped:
            skipped += 1
            continue
        checked += 1
        if block.kind == "console":
            failures.extend(check_console_block(block))
        else:
            failures.extend(check_json_block(block))
    return checked, skipped, failures


def default_files() -> list[Path]:
    """README.md plus every markdown file under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="Run every ```console/```json block in the documentation."
    )
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to check (default: README.md and docs/*.md)",
    )
    arguments = parser.parse_args(argv)
    files = [path.resolve() for path in arguments.files] or default_files()

    total_checked = total_skipped = 0
    failures: list[str] = []
    for path in files:
        checked, skipped, file_failures = check_file(path)
        total_checked += checked
        total_skipped += skipped
        failures.extend(file_failures)
        status = "FAIL" if file_failures else "ok"
        try:
            shown = path.relative_to(REPO_ROOT)
        except ValueError:
            shown = path
        print(f"{shown}: {checked} checked, {skipped} skipped [{status}]")
    if failures:
        print()
        for failure in failures:
            print(f"FAILED {failure}")
        return 1
    print(f"\nall documentation blocks pass ({total_checked} checked, "
          f"{total_skipped} skipped)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
